#!/bin/sh
# tenant_smoke.sh — end-to-end smoke of multi-tenant admission: boot
# srschedd, admit two tenants onto the shared 6-cube fabric through
# `srsched -admit` (different placements — identical placements can
# never co-schedule because a tenant's direct links are reserved at
# full share), reject a third with exit status 4 and a 422 report,
# fetch a tenant-scoped schedule, and assert the per-tenant metrics.
# Run via `make tenant-smoke`.
set -eu

PORT="${SMOKE_PORT:-18083}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/srschedd" ./cmd/srschedd
go build -o "$DIR/srsched" ./cmd/srsched
"$DIR/srschedd" -listen "127.0.0.1:$PORT" -drain 10s 2>/dev/null &
PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done

# Two tenants, same application, placements half a machine apart in
# allocator terms: round-robin for video, seeded random for audio.
"$DIR/srsched" -tfg dvb:4 -topo cube:6 -bw 64 -tauin 150 \
    -admit "$BASE" -tenant video -priority 5 | tee "$DIR/video.txt"
grep -q 'reserved' "$DIR/video.txt" || { echo "video not reserved"; exit 1; }

"$DIR/srsched" -tfg dvb:4 -topo cube:6 -bw 64 -tauin 150 -alloc random -seed 1 \
    -admit "$BASE" -tenant audio -priority 3 -rate 0.5 | tee "$DIR/audio.txt"
grep -q 'tenant "audio"' "$DIR/audio.txt" || { echo "audio not admitted"; exit 1; }

# A third tenant on video's exact placement cannot fit at any rung:
# srsched must exit 4 (admission_rejected) and print the reason.
set +e
"$DIR/srsched" -tfg dvb:4 -topo cube:6 -bw 64 -tauin 150 \
    -admit "$BASE" -tenant best-effort -priority 1 -rate 0.9 > "$DIR/reject.txt"
CODE=$?
set -e
[ "$CODE" = "4" ] || { echo "rejection exited $CODE, want 4"; exit 1; }
grep -q 'rejected' "$DIR/reject.txt" || { echo "rejection report missing"; exit 1; }

# The service itself must deliver the rejection as a 422 carrying the
# unified error envelope with the embedded admission report.
BODY=$(curl -s -w '\n%{http_code}' -X POST "$BASE/v1/admit" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64, "tau_in": 150},
  "tenant": {"id": "best-effort-2", "priority": 1, "rate_guarantee": 0.9}
}')
echo "$BODY" | tail -n 1 | grep -q '^422$' || { echo "admit rejection not a 422"; exit 1; }
echo "$BODY" | head -n 1 | grep -q '"kind":"admission_rejected"' \
    || { echo "422 missing admission_rejected kind"; exit 1; }
echo "$BODY" | head -n 1 | grep -q '"admitted":false' \
    || { echo "422 missing embedded admit report"; exit 1; }

# Tenant-scoped solve: an admitted tenant's /v1/schedule returns its
# standing schedule without re-solving.
curl -fsS -X POST "$BASE/v1/schedule" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64, "tau_in": 150},
  "tenant": {"id": "video", "priority": 5}
}' | grep -q '"feasible": *true\|"feasible":true' \
    || { echo "tenant-scoped schedule not feasible"; exit 1; }

# Per-tenant metrics: the gauge counts admitted tenants only, the
# admission counter splits by outcome, and requests carry tenant labels.
METRICS="$DIR/metrics.txt"
curl -fsS "$BASE/metrics" > "$METRICS"
grep -q '^srschedd_tenants 2$' "$METRICS" || { echo "tenant gauge != 2"; exit 1; }
grep -q '^srschedd_admissions_total{outcome="rejected"} 2$' "$METRICS" \
    || { echo "rejected admissions != 2"; exit 1; }
grep -q 'srschedd_tenant_requests_total{endpoint="admit",tenant="video"} 1' "$METRICS" \
    || { echo "video admit request not labelled"; exit 1; }
grep -q 'srschedd_tenant_requests_total{endpoint="schedule",tenant="video"} 1' "$METRICS" \
    || { echo "video schedule request not labelled"; exit 1; }
grep -q 'srschedd_tenant_requests_total{endpoint="admit",tenant="best-effort"} 1' "$METRICS" \
    || { echo "rejected tenant's request not labelled"; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "srschedd did not exit cleanly"; exit 1; }
PID=""
echo "tenant smoke OK"
