#!/bin/sh
# explore_smoke.sh — end-to-end smoke of the unified exploration
# surface: boot srschedd, run a Pareto exploration over /v1/explore
# (placement axis + all four objectives, ?debug=trace), a grid
# exploration with a placement axis (winners reported), assert the
# /v1/sweep adapter returns the exact projection of its /v1/explore
# translation, run the same search locally through `srsched -explore`,
# check mode exclusivity exits 2, and assert the explore metrics.
# Run via `make explore-smoke`.
set -eu

PORT="${SMOKE_PORT:-18084}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/srschedd" ./cmd/srschedd
go build -o "$DIR/srsched" ./cmd/srsched
"$DIR/srschedd" -listen "127.0.0.1:$PORT" -drain 10s 2>/dev/null &
PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done

# Pareto mode with a traced request: an annealed candidate placement
# must reach full load (min τin = τc = 50 µs on the 6-cube at B=64),
# the front must be non-empty, and the span family must ride along.
curl -fsS -X POST "$BASE/v1/explore?debug=trace" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64},
  "objectives": ["tau_in", "latency", "links", "buffers"],
  "axes": {
    "tau_in": {"points": 2},
    "placement": {"anneal_seeds": [2], "anneal_steps": 2000}
  }
}' > "$DIR/pareto.json"
grep -q '"mode": *"pareto"\|"mode":"pareto"' "$DIR/pareto.json" || { echo "not pareto mode"; exit 1; }
grep -q '"source": *"anneal:2"\|"source":"anneal:2"' "$DIR/pareto.json" || { echo "annealed placement missing"; exit 1; }
grep -q '"min_tau_in": *50\|"min_tau_in":50' "$DIR/pareto.json" || { echo "annealed placement did not reach full load"; exit 1; }
grep -q '"front"' "$DIR/pareto.json" || { echo "no front"; exit 1; }
grep -q '"name": *"explore"\|"name":"explore"' "$DIR/pareto.json" || { echo "trace missing explore span"; exit 1; }

# Grid mode with a placement axis: one winner per point.
curl -fsS -X POST "$BASE/v1/explore" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64},
  "axes": {
    "tau_in": {"points": 3},
    "placement": {"allocators": ["greedy"]}
  }
}' > "$DIR/grid.json"
grep -q '"mode": *"grid"\|"mode":"grid"' "$DIR/grid.json" || { echo "not grid mode"; exit 1; }
grep -q '"winners"' "$DIR/grid.json" || { echo "no winners reported"; exit 1; }
grep -q '"source": *"allocator:greedy"\|"source":"allocator:greedy"' "$DIR/grid.json" || { echo "greedy placement missing"; exit 1; }

# The sweep adapter: /v1/sweep and the projection of its /v1/explore
# translation must be byte-identical.
SWEEP_REQ='{"problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64}, "points": 4}'
curl -fsS -X POST "$BASE/v1/sweep" -d "$SWEEP_REQ" > "$DIR/sweep.json"
grep -q '"schema_version"' "$DIR/sweep.json" || { echo "sweep failed"; exit 1; }
EXPLORE_REQ='{"problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64}, "axes": {"tau_in": {"points": 4}}}'
curl -fsS -X POST "$BASE/v1/explore" -d "$EXPLORE_REQ" > "$DIR/explore-grid.json"
# The explore result's points array and sweep header fields must embed
# the sweep body exactly (SweepResult is a field-for-field projection).
for field in '"tau_c"' '"tau_m"' '"points"'; do
    grep -o "$field.*" "$DIR/sweep.json" | head -c 200 > "$DIR/want"
    grep -o "$field.*" "$DIR/explore-grid.json" | head -c 200 > "$DIR/got"
    cmp -s "$DIR/want" "$DIR/got" || { echo "sweep/explore diverged on $field"; exit 1; }
done

# Local exploration: srsched -explore prints a front with the annealed
# placement at full load.
"$DIR/srsched" -tfg dvb:4 -topo cube:6 -bw 64 -explore -anneal-seeds 2 -grid-points 2 | tee "$DIR/local.txt"
grep -q 'min τin 50.00' "$DIR/local.txt" || { echo "local explore: no full-load placement"; exit 1; }

# Mode exclusivity is a usage error: exit 2 with the hint.
set +e
"$DIR/srsched" -explore -best 3 2> "$DIR/excl.txt"
CODE=$?
set -e
[ "$CODE" = "2" ] || { echo "conflicting modes exited $CODE, want 2"; exit 1; }
grep -q 'conflicting modes' "$DIR/excl.txt" || { echo "exclusivity message missing"; exit 1; }

# Explore metrics: two explorations per mode family ran above.
METRICS="$DIR/metrics.txt"
curl -fsS "$BASE/metrics" > "$METRICS"
grep -q '^srschedd_explore_runs_total{mode="pareto"} 1$' "$METRICS" || { echo "pareto run not counted"; exit 1; }
grep -q '^srschedd_explore_runs_total{mode="grid"} 3$' "$METRICS" || { echo "grid runs not counted"; exit 1; }
grep -q '^srschedd_explore_front_points_total [1-9]' "$METRICS" || { echo "front points not counted"; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "srschedd did not exit cleanly"; exit 1; }
PID=""
echo "explore smoke OK"
