#!/bin/sh
# service_smoke.sh — end-to-end smoke of the srschedd daemon: boot it,
# hit every endpoint once, then shut it down gracefully and require a
# clean exit. Run via `make service-smoke`.
set -eu

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/srschedd"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")" smoke-out.json' EXIT

go build -o "$BIN" ./cmd/srschedd
"$BIN" -listen "127.0.0.1:$PORT" -drain 10s 2>/dev/null &
PID=$!

# Wait for the listener.
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"ok"' || { echo "healthz not ok"; exit 1; }

# One schedule at moderate load on the paper's binary 6-cube.
curl -fsS -X POST "$BASE/v1/schedule" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64, "tau_in": 150}
}' > smoke-out.json
grep -q '"feasible": *true' smoke-out.json || grep -q '"feasible":true' smoke-out.json \
    || { echo "schedule not feasible:"; cat smoke-out.json; exit 1; }

# A survivable single-link repair.
curl -fsS -X POST "$BASE/v1/repair" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "tau_in": 150},
  "fault": {"links": ["0-1"]}
}' | grep -q '"outcome"' || { echo "repair missing outcome"; exit 1; }

# An unsurvivable fault must be a 422, not a 500.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/repair" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "tau_in": 150},
  "fault": {"nodes": [0]}
}')
[ "$CODE" = "422" ] || { echo "infeasible repair returned $CODE, want 422"; exit 1; }

# A short sweep, and the metrics the sweep should have moved.
curl -fsS -X POST "$BASE/v1/sweep" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6"}, "points": 4
}' | grep -q '"points"' || { echo "sweep missing points"; exit 1; }
curl -fsS "$BASE/metrics" | grep -q 'srschedd_solve_runs_total' \
    || { echo "metrics missing solve counter"; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
wait "$PID" || { echo "srschedd did not exit cleanly"; exit 1; }
PID=""
echo "service smoke OK"
