#!/bin/sh
# watch_smoke.sh — end-to-end smoke of the /v1/watch streaming
# reconfiguration service: boot srschedd, drive a subscription through
# `srsched -watch`, exercise the raw SSE surface (create, events,
# Last-Event-ID resume), check the watch metrics, and require the
# SIGTERM drain to hand every open stream a terminal closing frame.
# Run via `make watch-smoke`.
set -eu

PORT="${SMOKE_PORT:-18081}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
trap 'kill "$PID" "$CURLPID" 2>/dev/null || true; rm -rf "$DIR"' EXIT
PID=""
CURLPID=""

go build -o "$DIR/srschedd" ./cmd/srschedd
go build -o "$DIR/srsched" ./cmd/srsched
"$DIR/srschedd" -listen "127.0.0.1:$PORT" -drain-timeout 10s 2>/dev/null &
PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done

# The client path: srsched -watch replays a single-link fault (fault,
# then fault-repaired) over the stream and prints each repaired frame.
"$DIR/srsched" -tfg dvb:4 -topo cube:6 -bw 64 -tauin 150 \
    -fail-link 0-1 -watch "$BASE" > "$DIR/client.txt"
grep -q 'incremental' "$DIR/client.txt" \
    || { echo "watch client saw no incremental repair:"; cat "$DIR/client.txt"; exit 1; }
grep -q 'unaffected' "$DIR/client.txt" \
    || { echo "watch client saw no unaffected frame after the repair:"; cat "$DIR/client.txt"; exit 1; }

# The raw SSE surface: subscribe, keep the stream open in the
# background, and push one fault event at the subscription.
curl -sN -X POST "$BASE/v1/watch" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64, "tau_in": 150}
}' > "$DIR/stream.txt" &
CURLPID=$!
for i in $(seq 1 50); do
    if grep -q '"type":"hello"' "$DIR/stream.txt" 2>/dev/null; then break; fi
    sleep 0.1
done
SUB=$(sed -n 's/.*"sub_id":"\([^"]*\)".*/\1/p' "$DIR/stream.txt" | head -1)
[ -n "$SUB" ] || { echo "no sub_id in hello frame:"; cat "$DIR/stream.txt"; exit 1; }

curl -fsS -X POST "$BASE/v1/watch/$SUB/events" \
    -d '{"type": "fault", "links": ["0-1"]}' | grep -q '"event_seq"' \
    || { echo "event not acked"; exit 1; }
for i in $(seq 1 50); do
    if grep -q '"outcome":"incremental"' "$DIR/stream.txt" 2>/dev/null; then break; fi
    sleep 0.1
done
grep -q '"outcome":"incremental"' "$DIR/stream.txt" \
    || { echo "no incremental repair frame:"; cat "$DIR/stream.txt"; exit 1; }

# Resume: a fresh attach with Last-Event-ID after the hello must
# replay the repair frame from the ring, same seq.
curl -sN -m 2 -H 'Last-Event-ID: 1' "$BASE/v1/watch/$SUB" > "$DIR/resume.txt" || true
grep -q '"outcome":"incremental"' "$DIR/resume.txt" \
    || { echo "resume replayed no repair frame:"; cat "$DIR/resume.txt"; exit 1; }

# The watch surface shows up on /metrics.
curl -fsS "$BASE/metrics" > "$DIR/metrics.txt"
for m in srschedd_watch_subscriptions srschedd_watch_events_total srschedd_watch_frames_total; do
    grep -q "$m" "$DIR/metrics.txt" || { echo "metrics missing $m"; exit 1; }
done

# SIGTERM drain: the still-open stream must receive a terminal closing
# frame and the daemon must exit cleanly with the stream attached.
kill -TERM "$PID"
wait "$PID" || { echo "srschedd did not exit cleanly"; exit 1; }
PID=""
wait "$CURLPID" 2>/dev/null || true
CURLPID=""
grep -q '"type":"closing"' "$DIR/stream.txt" \
    || { echo "drain sent no closing frame:"; cat "$DIR/stream.txt"; exit 1; }
echo "watch smoke OK"
