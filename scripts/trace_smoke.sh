#!/bin/sh
# trace_smoke.sh — end-to-end smoke of the tracing layer: srsched
# renders and exports a trace, srschedd serves ?debug=trace responses
# that traceview can convert, /v1/version answers, and the pprof
# listener stays off the API port. Run via `make trace-smoke`.
set -eu

PORT="${SMOKE_PORT:-18081}"
PPROF_PORT="${SMOKE_PPROF_PORT:-18082}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/srsched" ./cmd/srsched
go build -o "$DIR/srschedd" ./cmd/srschedd
go build -o "$DIR/traceview" ./cmd/traceview

# CLI tracing: the rendered tree must show the SR pipeline stages, and
# -trace-out must produce a Chrome trace_event document.
"$DIR/srsched" -tfg dvb:4 -topo cube:6 -bw 64 -tauin 150 -trace -trace-out "$DIR/chrome.json" > "$DIR/srsched.out"
for stage in time_bounds assign_paths interval_allocation interval_scheduling omega_emission; do
    grep -q "$stage" "$DIR/srsched.out" || { echo "srsched -trace missing stage $stage"; cat "$DIR/srsched.out"; exit 1; }
done
grep -q '"traceEvents"' "$DIR/chrome.json" || { echo "-trace-out is not Chrome trace JSON"; exit 1; }

"$DIR/srschedd" -listen "127.0.0.1:$PORT" -pprof-addr "127.0.0.1:$PPROF_PORT" -drain 10s 2>/dev/null &
PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done

# ?debug=trace attaches the envelope; traceview accepts the whole
# response in both output modes.
curl -fsS -X POST "$BASE/v1/schedule?debug=trace" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64, "tau_in": 150}
}' > "$DIR/traced.json"
grep -q '"trace"' "$DIR/traced.json" || { echo "response missing trace envelope"; exit 1; }
"$DIR/traceview" -text "$DIR/traced.json" | grep -q '^request' || { echo "traceview -text lost the request root"; exit 1; }
"$DIR/traceview" "$DIR/traced.json" | grep -q '"traceEvents"' || { echo "traceview produced no Chrome document"; exit 1; }

# Untraced responses must not carry the field.
curl -fsS -X POST "$BASE/v1/schedule" -d '{
  "problem": {"tfg": "dvb:4", "topology": "cube:6", "bandwidth": 64, "tau_in": 150}
}' | grep -q '"trace"' && { echo "untraced response leaks a trace field"; exit 1; }

curl -fsS "$BASE/v1/version" | grep -q '"schema_version"' || { echo "/v1/version missing schema_version"; exit 1; }
curl -fsS "$BASE/metrics" | grep -q 'srschedd_solve_stage_duration_seconds_bucket' \
    || { echo "metrics missing stage histograms"; exit 1; }

# The profiler lives on its own port only.
curl -fsS "http://127.0.0.1:$PPROF_PORT/debug/pprof/cmdline" >/dev/null || { echo "pprof listener dead"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")
[ "$CODE" = "404" ] || { echo "pprof exposed on the API port (status $CODE)"; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "srschedd did not exit cleanly"; exit 1; }
PID=""
echo "trace smoke OK"
