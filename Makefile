# Tier-1 verify is `make check`: build, vet, then the full test suite.
# `make race` is the concurrency job for the parallel sweep/search
# engine and the /v1/watch subscription machinery (concurrent
# create/event/close churn); run it whenever internal/parallel,
# internal/service, or a sweep changes.

GO ?= go

.PHONY: all build vet test check race faults bench bench-parallel bench-json bench-compare bench-smoke-large service-smoke fleet-smoke trace-smoke watch-smoke tenant-smoke explore-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./...

# Survivability smoke sweep: the repair ladder against single-link
# faults on the binary 6-cube, each repaired Ω re-verified by
# packet-level fault injection (capped at 16 faults per load point for
# speed; drop -max-faults for the full panel).
faults:
	$(GO) run ./cmd/experiments -fig faults -config 6cube-b64 -max-faults 16

# End-to-end smoke of the srschedd daemon: boot, hit every endpoint,
# graceful shutdown (scripts/service_smoke.sh).
service-smoke:
	sh scripts/service_smoke.sh

# End-to-end smoke of the tracing layer: srsched -trace/-trace-out,
# ?debug=trace through traceview, /v1/version, stage histograms, and
# the isolated pprof listener (scripts/trace_smoke.sh).
trace-smoke:
	sh scripts/trace_smoke.sh

# End-to-end smoke of the fleet features: two replicas sharing a
# -warmstart-dir, snapshot write-behind and fetch, and a kill/restart
# whose first solve derives zero structure (scripts/fleet_smoke.sh).
fleet-smoke:
	sh scripts/fleet_smoke.sh

# End-to-end smoke of the /v1/watch streaming reconfiguration service:
# srsched -watch, raw SSE with Last-Event-ID resume, watch metrics,
# and closing frames on SIGTERM drain (scripts/watch_smoke.sh).
watch-smoke:
	sh scripts/watch_smoke.sh

# End-to-end smoke of multi-tenant admission: two tenants admitted via
# srsched -admit, a third rejected with exit 4 and a 422 report, and
# the per-tenant metrics asserted (scripts/tenant_smoke.sh).
tenant-smoke:
	sh scripts/tenant_smoke.sh

# End-to-end smoke of the unified exploration surface: /v1/explore in
# Pareto and grid modes, the /v1/sweep adapter's byte-identity with the
# explore projection, srsched -explore, mode exclusivity (exit 2), and
# the explore metrics (scripts/explore_smoke.sh).
explore-smoke:
	sh scripts/explore_smoke.sh

# Full figure-regeneration benchmark suite (see bench_test.go).
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Machine-readable perf trajectory: the headline pipeline benchmark,
# the large-scale feasibility solves (10-cube, 32x32 torus), the
# Fig. 5/7 panels, the serial sweep, and the CP-simulator replay,
# rendered to JSON (ns/op, B/op, allocs/op, shape metrics) by
# cmd/benchjson.
BENCH_JSON_SUITE = ScheduleComputeSixCube$$|ScheduleTenCube$$|ScheduleTorus32$$|Fig5|Fig7|CPSimPacketReplay|SerialSweepFig5SixCubeB64|ColdVsWarmStartTenCube|ScheduleBatch64|TenantAdmitSixCube$$|ExploreSixCube$$

# The baseline records three runs per benchmark so the compare gate's
# min-of-3 meets a min-of-3 baseline: a single lucky baseline run would
# otherwise read as a phantom regression later.
bench-json:
	$(GO) test -run XXX -bench '$(BENCH_JSON_SUITE)' \
		-benchmem -benchtime 2x -count 3 . | $(GO) run ./cmd/benchjson > BENCH_schedule.json

# Perf gate: rerun the bench-json suite and fail on a >10% regression
# in ns/op, B/op or allocs/op against the committed BENCH_schedule.json
# baseline. Each benchmark runs three times and the smallest value per
# metric is compared (min-of-N filters scheduler noise; a real
# regression slows every run, and allocs/op is deterministic anyway).
bench-compare:
	$(GO) test -run XXX -bench '$(BENCH_JSON_SUITE)' \
		-benchmem -benchtime 2x -count 3 . | $(GO) run ./cmd/benchjson | $(GO) run ./cmd/benchjson -compare BENCH_schedule.json

# Large-config smoke: one solve each of the 10-cube and 32x32-torus
# feasibility benchmarks. Each iteration is a full ~1000-node pipeline
# solve (a couple of seconds), so this runs at -benchtime 1x; the
# benchmark itself fails unless the solve is feasible.
bench-smoke-large:
	$(GO) test -run XXX -bench 'ScheduleTenCube$$|ScheduleTorus32$$' -benchmem -benchtime 1x .

# Serial-vs-parallel sweep comparison plus the conflict-matrix
# allocs/op delta recorded in docs/results-latest.txt.
bench-parallel:
	$(GO) test -run XXX -bench '(Serial|Parallel)(Sweep|BestAllocation)' -benchtime 3x .
	$(GO) test -run XXX -bench ConflictMatrix -benchmem ./internal/schedule/

clean:
	$(GO) clean ./...
