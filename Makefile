# Tier-1 verify is `make check`: build, vet, then the full test suite.
# `make race` is the concurrency job for the parallel sweep/search
# engine; run it whenever internal/parallel or a sweep changes.

GO ?= go

.PHONY: all build vet test check race bench bench-parallel clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./...

# Full figure-regeneration benchmark suite (see bench_test.go).
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Serial-vs-parallel sweep comparison plus the conflict-matrix
# allocs/op delta recorded in docs/results-latest.txt.
bench-parallel:
	$(GO) test -run XXX -bench '(Serial|Parallel)(Sweep|BestAllocation)' -benchtime 3x .
	$(GO) test -run XXX -bench ConflictMatrix -benchmem ./internal/schedule/

clean:
	$(GO) clean ./...
