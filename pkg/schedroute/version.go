package schedroute

import (
	"runtime"
	"runtime/debug"
)

// VersionInfo reports what a build speaks: the wire schema version, the
// module version baked in at build time, and the Go runtime. Served on
// GET /v1/version and printed by `srschedd -version`, so clients can
// tell which schema a daemon speaks without sending a bad request.
type VersionInfo struct {
	SchemaVersion int    `json:"schema_version"`
	ModuleVersion string `json:"module_version"`
	GoVersion     string `json:"go_version"`
}

// Version describes the running build. The module version comes from
// the embedded build info and is "(devel)" for non-module builds (go
// test binaries, plain `go build` in the work tree).
func Version() VersionInfo {
	v := VersionInfo{
		SchemaVersion: SchemaVersion,
		ModuleVersion: "(devel)",
		GoVersion:     runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		v.ModuleVersion = bi.Main.Version
	}
	return v
}
