package schedroute

import (
	"bytes"
	"encoding/json"

	"schedroute/internal/schedule"
)

// encodeOmega renders an Ω through the versioned artifact encoder into
// a RawMessage, so service responses and -save files carry the same
// bytes (schema_version included).
func encodeOmega(om *schedule.Omega) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := schedule.EncodeOmega(&buf, om); err != nil {
		return nil, err
	}
	return json.RawMessage(bytes.TrimSpace(buf.Bytes())), nil
}

// NewScheduleResult converts a pipeline Result into the wire form.
// tauIn is the effective invocation period the solve actually ran at —
// passed explicitly because a structure-cached Built's own TauIn
// belongs to whichever request built it, not necessarily this one.
// The Ω artifact is embedded only when includeOmega is set and the
// problem was feasible; wall-clock stats only when the request asked
// for them (the deterministic counters are always present).
func NewScheduleResult(b *Built, res *schedule.Result, tauIn float64, includeOmega, includeStats bool) (*ScheduleResult, error) {
	out := &ScheduleResult{
		SchemaVersion: SchemaVersion,
		Feasible:      res.Feasible,
		TauC:          b.Timing.TauC(),
		TauM:          b.Timing.TauM(),
		TauIn:         tauIn,
		Load:          b.Timing.TauC() / tauIn,
		// A tenant solve runs against residual link shares; the LSD
		// baseline ignores reservations and can land on a fully-reserved
		// link, making its relative peak +Inf — unencodable in JSON.
		PeakLSD: finiteOrZero(res.PeakLSD),
		Peak:    finiteOrZero(res.Peak),
		Latency: finiteOrZero(res.Latency),
	}
	if !res.Feasible {
		out.FailStage = res.FailStage.String()
	} else {
		out.Intervals = res.Intervals.K()
		out.Slices = len(res.Slices)
		out.Commands = res.Omega.NumCommands()
		if includeOmega {
			om, err := encodeOmega(res.Omega)
			if err != nil {
				return nil, err
			}
			out.Omega = om
		}
	}
	st := statsToWire(res.Stats)
	if !includeStats {
		st.WindowsNS, st.AssignNS, st.AllocateNS, st.ScheduleNS, st.OmegaNS = 0, 0, 0, 0, 0
	}
	out.Stats = st
	return out, nil
}

// NewRepairResult converts a RepairReport into the wire form. The
// repaired Ω is embedded only when includeOmega is set and a repaired
// schedule exists.
func NewRepairResult(rep *schedule.RepairReport, includeOmega bool) (*RepairResult, error) {
	out := &RepairResult{
		SchemaVersion: SchemaVersion,
		Outcome:       rep.Outcome.String(),
		Faults:        rep.Faults,
		Affected:      len(rep.Affected),
		Rerouted:      rep.Rerouted,
		NewPeak:       finiteOrZero(rep.NewPeak),
		TauOut:        rep.TauOut,
		WindowScale:   rep.WindowScale,
		LostTasks:     rep.LostTasks,
		Reason:        rep.Reason,
	}
	if rep.Outcome == schedule.RepairInfeasible {
		out.Stage = rep.Stage.String()
	}
	if includeOmega && rep.Result != nil && rep.Result.Omega != nil {
		om, err := encodeOmega(rep.Result.Omega)
		if err != nil {
			return nil, err
		}
		out.Omega = om
	}
	return out, nil
}
