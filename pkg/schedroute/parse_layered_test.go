package schedroute

import (
	"errors"
	"testing"

	"schedroute/internal/errkind"
	"schedroute/internal/tfg"
)

// The layered spec is the large-scale benchmark workload, so its shape
// must be stable: same seed and widths, same graph, forever.
func TestLoadGraphLayeredSpec(t *testing.T) {
	g, err := LoadGraph("layered:42,3,4*2,2,0.4")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tfg.RandomLayered(42, []int{3, 4, 4, 2}, 400, 1925, 192, 3200, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != want.NumTasks() || g.NumMessages() != want.NumMessages() {
		t.Fatalf("spec graph %d tasks / %d msgs, direct call %d / %d",
			g.NumTasks(), g.NumMessages(), want.NumTasks(), want.NumMessages())
	}
	for i := 0; i < g.NumMessages(); i++ {
		gm, wm := g.Message(tfg.MessageID(i)), want.Message(tfg.MessageID(i))
		if gm.Bytes != wm.Bytes || gm.Src != wm.Src || gm.Dst != wm.Dst {
			t.Fatalf("message %d differs from direct RandomLayered call", i)
		}
	}
}

// The two benchmark presets must stay loadable at the documented scale
// (~960 tasks, ~2.6k messages): the feasibility benchmarks assume it.
func TestLoadGraphLayeredLargePreset(t *testing.T) {
	g, err := LoadGraph("layered:7,32,64*14,32,0.03")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumTasks(); got != 32+64*14+32 {
		t.Fatalf("large preset has %d tasks, want %d", got, 32+64*14+32)
	}
	if g.NumMessages() < 1000 {
		t.Fatalf("large preset has only %d messages", g.NumMessages())
	}
}

func TestLoadGraphLayeredSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"layered:7",            // too few fields
		"layered:7,32",         // still no density
		"layered:7,32,3",       // final field is not a density
		"layered:x,32,0.1",     // bad seed
		"layered:7,32,0.x",     // bad density
		"layered:7,3x,0.1",     // bad width
		"layered:7,32*0,4,0.1", // repeat < 1
		"layered:7,32*x,4,0.1", // bad repeat
		"layered:7,0,0.1",      // zero-width layer (rejected by tfg)
	} {
		_, err := LoadGraph(spec)
		if err == nil {
			t.Errorf("spec %q accepted", spec)
			continue
		}
		if !errors.Is(err, errkind.ErrBadInput) {
			t.Errorf("spec %q: error not marked bad-input: %v", spec, err)
		}
	}
}
