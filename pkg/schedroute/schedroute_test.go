package schedroute

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"schedroute/internal/errkind"
	"schedroute/internal/schedule"
)

func jsonReader(raw json.RawMessage) io.Reader { return bytes.NewReader(raw) }

func TestProblemValidate(t *testing.T) {
	good := Problem{TFG: "dvb:4", Topology: "cube:6"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := map[string]Problem{
		"no tfg":        {Topology: "cube:6"},
		"both tfg":      {TFG: "dvb:4", TFGInline: json.RawMessage(`{}`), Topology: "cube:6"},
		"no topology":   {TFG: "dvb:4"},
		"negative rate": {TFG: "dvb:4", Topology: "cube:6", TauIn: -1},
	}
	for name, p := range cases {
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, errkind.ErrBadInput) {
			t.Errorf("%s: not classified bad input: %v", name, err)
		}
	}
	bad := Problem{SchemaVersion: 99, TFG: "dvb:4", Topology: "cube:6"}
	if err := bad.Validate(); !errors.Is(err, errkind.ErrUnknownVersion) {
		t.Errorf("schema_version 99: got %v, want ErrUnknownVersion", err)
	}
}

func TestBuildResolvesDefaults(t *testing.T) {
	b, err := Problem{TFG: "dvb:4", Topology: "cube:6"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec.Bandwidth != 64 || b.Spec.Allocator != "rr" || b.Spec.SchemaVersion != SchemaVersion {
		t.Fatalf("defaults not applied: %+v", b.Spec)
	}
	if b.TauIn != b.Timing.TauC() {
		t.Fatalf("τin default: got %g, want τc=%g", b.TauIn, b.Timing.TauC())
	}
	if b.Topology.Nodes() != 64 {
		t.Fatalf("cube:6 has %d nodes", b.Topology.Nodes())
	}
}

// TestStructureKeyIdentity: the key folds out everything a Solver does
// not depend on (τin, spelled-out defaults, seeds of deterministic
// allocators) and keeps everything it does.
func TestStructureKeyIdentity(t *testing.T) {
	base := Problem{TFG: "dvb:4", Topology: "cube:6"}
	same := []Problem{
		{TFG: "dvb:4", Topology: "cube:6", TauIn: 141},
		{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64, Allocator: "rr"},
		{TFG: "dvb:4", Topology: "cube:6", AllocSeed: 7}, // rr ignores seeds
	}
	for i, p := range same {
		if p.StructureKey() != base.StructureKey() {
			t.Errorf("case %d: key %q != base %q", i, p.StructureKey(), base.StructureKey())
		}
	}
	diff := []Problem{
		{TFG: "dvb:4", Topology: "ghc:4,4,4"},
		{TFG: "chain:8", Topology: "cube:6"},
		{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 128},
		{TFG: "dvb:4", Topology: "cube:6", Allocator: "random"},
		{TFG: "dvb:4", Topology: "cube:6", Allocator: "random", AllocSeed: 7},
	}
	for i, p := range diff {
		if p.StructureKey() == base.StructureKey() {
			t.Errorf("case %d: key collides with base", i)
		}
	}
}

func TestOptionsEngineMapping(t *testing.T) {
	for name, want := range map[string]schedule.Engine{
		"": schedule.EngineAuto, "auto": schedule.EngineAuto,
		"greedy": schedule.EngineGreedy, "exact": schedule.EngineExact,
	} {
		o, err := Options{Engine: name}.ToSchedule()
		if err != nil {
			t.Fatalf("engine %q: %v", name, err)
		}
		if o.Engine != want {
			t.Errorf("engine %q: got %v, want %v", name, o.Engine, want)
		}
	}
	if _, err := (Options{Engine: "quantum"}).ToSchedule(); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("unknown engine: got %v, want ErrBadInput", err)
	}
}

func TestFaultSpecBuild(t *testing.T) {
	b, err := Problem{TFG: "dvb:4", Topology: "cube:6"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := FaultSpec{Links: []string{"0-1"}, Nodes: []int{63}}.Build(b.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if fs == nil || fs.Empty() {
		t.Fatal("fault set empty")
	}
	if got, _ := (FaultSpec{}).Build(b.Topology); got != nil {
		t.Fatal("empty spec should build a nil fault set")
	}
	if _, err := (FaultSpec{Nodes: []int{64}}).Build(b.Topology); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("out-of-range node: got %v, want ErrBadInput", err)
	}
	if _, err := (FaultSpec{Links: []string{"0~1"}}).Build(b.Topology); !errors.Is(err, errkind.ErrBadInput) {
		t.Errorf("bad link spec: got %v, want ErrBadInput", err)
	}
}

// TestScheduleResultWire pins the wire conversion: schema version
// stamped, stats gating, Ω embedding.
func TestScheduleResultWire(t *testing.T) {
	b, err := Problem{TFG: "dvb:4", Topology: "cube:6", TauIn: 141}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Compute(b.ScheduleProblem(), schedule.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("fixture infeasible at %v", res.FailStage)
	}
	out, err := NewScheduleResult(b, res, b.TauIn, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != SchemaVersion || !out.Feasible {
		t.Fatalf("bad wire header: %+v", out)
	}
	if len(out.Omega) == 0 {
		t.Fatal("IncludeOmega did not embed the artifact")
	}
	if out.Stats == nil || out.Stats.Attempts < 1 {
		t.Fatal("deterministic counters missing")
	}
	if out.Stats.WindowsNS != 0 {
		t.Fatal("wall-clock stats leaked without CollectStats")
	}
	// The embedded artifact is the -save format: it must decode.
	om, err := schedule.DecodeOmega(jsonReader(out.Omega))
	if err != nil {
		t.Fatalf("embedded Ω does not decode: %v", err)
	}
	if om.TauIn != 141 {
		t.Fatalf("embedded Ω period %g", om.TauIn)
	}

	lean, err := NewScheduleResult(b, res, b.TauIn, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.Omega) != 0 {
		t.Fatal("Ω embedded without IncludeOmega")
	}
}
