package schedroute

// This file is the unified exploration vocabulary: one schema-versioned
// request shape — objectives + axes — behind which the three sweep
// surfaces that grew independently (/v1/sweep period grids, the
// experiments sweep configs, and schedule.ComputeBestAllocation's
// candidate-placement search) consolidate.
//
//   - No objectives, τin axis only: a period grid — exactly the old
//     /v1/sweep semantics, point for point.
//   - No objectives, τin + placement axes: the best-allocation search
//     at every grid point (feasible beats infeasible, then lower peak),
//     with the winning placement reported per point.
//   - Objectives named: the Pareto-front explorer — minimal feasible
//     τin per placement by bisection, then latency (window) and
//     resource minimization per candidate period, dominated points
//     eliminated.
//
// /v1/sweep and SweepRequest remain supported as a thin adapter over
// this type (see SweepRequest.ToExplore and ExploreResult.SweepResult);
// pre-existing sweep requests keep returning byte-identical responses.
// New clients should prefer POST /v1/explore.

// TauInAxis spans the candidate invocation periods of an exploration.
type TauInAxis struct {
	// Points is the number of candidate periods: the grid size in grid
	// mode (0 = 12, the paper's grid), or the per-placement candidate
	// periods above the bisected minimum in Pareto mode (0 = 5).
	Points int `json:"points,omitempty"`
	// Min and Max bound the period range in µs (0 = τc and 5τc). Pareto
	// mode additionally clamps Min up to τc — shorter periods are never
	// feasible.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// PlacementAxis adds candidate task placements beyond the problem's
// own, turning the exploration into a placement co-optimization.
type PlacementAxis struct {
	// Allocators names extra candidate placements by allocator spec
	// ("rr", "greedy", "random", "anneal"), each resolved with the
	// problem's alloc_seed.
	Allocators []string `json:"allocators,omitempty"`
	// AnnealSeeds adds one simulated-annealing placement per seed,
	// deterministic per seed.
	AnnealSeeds []int64 `json:"anneal_seeds,omitempty"`
	// AnnealSteps tunes the annealer move budget (0 = default).
	AnnealSteps int `json:"anneal_steps,omitempty"`
}

// Empty reports whether the axis adds no candidate placements.
func (a *PlacementAxis) Empty() bool {
	return a == nil || (len(a.Allocators) == 0 && len(a.AnnealSeeds) == 0)
}

// ExploreAxes selects the dimensions an exploration varies.
type ExploreAxes struct {
	// TauIn spans invocation periods; absent means the default grid.
	TauIn *TauInAxis `json:"tau_in,omitempty"`
	// Placement adds candidate placements; absent means the problem's
	// own placement only.
	Placement *PlacementAxis `json:"placement,omitempty"`
}

// ExploreModeGrid and ExploreModePareto are the two exploration modes,
// reported in ExploreResult.Mode.
const (
	ExploreModeGrid   = "grid"
	ExploreModePareto = "pareto"
)

// ExploreRequest asks for one multi-criteria exploration: a problem, a
// set of axes to vary, and the objectives that define domination. Empty
// objectives select grid mode (every axis point reported); naming
// objectives selects Pareto mode (dominated points eliminated).
type ExploreRequest struct {
	Problem Problem `json:"problem"`
	Options Options `json:"options,omitempty"`
	// Tenant scopes the exploration (v2); absent means the default
	// tenant.
	Tenant *Tenant `json:"tenant,omitempty"`
	// Objectives are the minimized axes among "tau_in", "latency",
	// "links", "buffers". Empty means grid mode.
	Objectives []string `json:"objectives,omitempty"`
	// Axes select what varies; the zero value is the default τin grid
	// over [τc, 5τc] at the problem's own placement.
	Axes ExploreAxes `json:"axes,omitempty"`
	// Tolerance is the Pareto bisection tolerance in µs (0 = τc/64).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Execute replays each feasible grid point's Ω through the
	// deterministic executor (grid mode only).
	Execute bool `json:"execute,omitempty"`
	// Invocations is the executor run length (0 = 8; only with Execute).
	Invocations int `json:"invocations,omitempty"`
}

// Mode reports which exploration the request selects.
func (r ExploreRequest) Mode() string {
	if len(r.Objectives) > 0 {
		return ExploreModePareto
	}
	return ExploreModeGrid
}

// TauInAxisOrDefault resolves the request's period axis, never nil.
func (r ExploreRequest) TauInAxisOrDefault() TauInAxis {
	if r.Axes.TauIn == nil {
		return TauInAxis{}
	}
	return *r.Axes.TauIn
}

// Validate checks the exploration shape beyond what problem building
// covers. Objective names are validated downstream by the solver's
// parser, which owns the vocabulary.
func (r ExploreRequest) Validate() error {
	ax := r.TauInAxisOrDefault()
	if ax.Min < 0 || ax.Max < 0 {
		return badInput("explore: axes.tau_in min/max must be non-negative")
	}
	if ax.Min > 0 && ax.Max > 0 && ax.Max < ax.Min {
		return badInput("explore: axes.tau_in range [%g, %g] is empty", ax.Min, ax.Max)
	}
	if ax.Points < 0 || ax.Points > 100000 {
		return badInput("explore: axes.tau_in points %d out of range [0,100000]", ax.Points)
	}
	if r.Tolerance < 0 {
		return badInput("explore: tolerance must be non-negative")
	}
	if r.Mode() == ExploreModePareto && r.Execute {
		return badInput("explore: execute applies to grid mode only")
	}
	if p := r.Axes.Placement; p != nil {
		for _, a := range p.Allocators {
			switch a {
			case "rr", "greedy", "random", "anneal":
			default:
				return badInput("explore: unknown placement allocator %q (want rr, greedy, random or anneal)", a)
			}
		}
	}
	return nil
}

// ToExplore is the compatibility adapter: the exact exploration a
// legacy sweep request describes. A sweep is a grid-mode exploration
// over the τin axis at the problem's own placement.
func (r SweepRequest) ToExplore() ExploreRequest {
	return ExploreRequest{
		Problem: r.Problem,
		Options: r.Options,
		Tenant:  r.Tenant,
		Axes: ExploreAxes{TauIn: &TauInAxis{
			Points: r.Points, Min: r.MinTauIn, Max: r.MaxTauIn,
		}},
		Execute:     r.Execute,
		Invocations: r.Invocations,
	}
}

// ParetoPoint is one schedule on the explored front: a deployable
// (placement, period, window) triple with its latency and fabric
// footprint. All objective fields are minimized.
type ParetoPoint struct {
	// Placement indexes ExploreResult.Placements.
	Placement int `json:"placement"`
	// TauIn is the invocation period in µs; Load is τc/τin.
	TauIn float64 `json:"tau_in"`
	Load  float64 `json:"load"`
	// Window is the message window the point was solved with — the
	// latency-minimal feasible window when "latency" is an objective.
	Window float64 `json:"window"`
	// Latency is the windowed pipeline latency Λw in µs.
	Latency float64 `json:"latency"`
	// Links is the distinct physical links routed over; Buffers is the
	// buffer-slot count (nonzero message-interval reservations).
	Links   int `json:"links"`
	Buffers int `json:"buffers"`
	// Peak is the post-AssignPaths peak link utilization.
	Peak float64 `json:"peak"`
}

// PlacementOutcome reports one candidate placement's period search.
type PlacementOutcome struct {
	// Source says where the candidate came from: "problem" (the
	// request's own placement), "allocator:NAME", or "anneal:SEED".
	Source string `json:"source"`
	// Feasible reports whether any period in range scheduled; MinTauIn
	// is the bisected minimal feasible period when it did (Pareto mode).
	Feasible bool    `json:"feasible"`
	MinTauIn float64 `json:"min_tau_in,omitempty"`
}

// ExploreResult is the outcome of one exploration. Grid mode fills
// Points (and Winners when a placement axis was given); Pareto mode
// fills MinTauIn, Objectives, Placements, Evaluated and Front.
type ExploreResult struct {
	SchemaVersion int     `json:"schema_version"`
	Mode          string  `json:"mode"`
	TauC          float64 `json:"tau_c"`
	TauM          float64 `json:"tau_m"`

	// MinTauIn is the smallest feasible period found across all
	// placements (Pareto mode; 0 when nothing scheduled).
	MinTauIn float64 `json:"min_tau_in,omitempty"`
	// Objectives echoes the resolved objective set (Pareto mode).
	Objectives []string `json:"objectives,omitempty"`
	// Placements are the candidate placements in evaluation order.
	Placements []PlacementOutcome `json:"placements,omitempty"`
	// Evaluated counts the feasible schedules considered before
	// domination filtering (Pareto mode).
	Evaluated int `json:"evaluated,omitempty"`
	// Front is the non-dominated set, deterministically ordered.
	Front []ParetoPoint `json:"front,omitempty"`

	// Points are the grid-mode samples, one per τin axis point.
	Points []SweepPoint `json:"points,omitempty"`
	// Winners, parallel to Points, is the winning placement index per
	// point when a placement axis was explored in grid mode (feasible
	// beats infeasible, then lower peak — the best-allocation order).
	Winners []int `json:"winners,omitempty"`

	// Trace is the exploration's span tree, attached only under
	// ?debug=trace; last field for the same strip-and-compare reason as
	// ScheduleResult.Trace.
	Trace *TraceEnvelope `json:"trace,omitempty"`
}

// SweepResult is the compatibility projection: the exact legacy
// response body for a grid-mode exploration that came in through
// /v1/sweep.
func (r *ExploreResult) SweepResult() *SweepResult {
	return &SweepResult{
		SchemaVersion: r.SchemaVersion,
		TauC:          r.TauC,
		TauM:          r.TauM,
		Points:        r.Points,
	}
}
