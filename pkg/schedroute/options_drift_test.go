package schedroute

import (
	"reflect"
	"testing"

	"schedroute/internal/schedule"
)

// TestWireOptionsMapToSolverOptions is the wire half of the
// functional-options drift contract: every field of the wire Options
// maps to exactly one registered solver option. The Stats/CollectStats
// pair is the one documented alias — both spellings resolve to the
// single "stats" option — and every other field maps one-to-one. A
// field added to the wire struct without a solver option (or renamed on
// either side) fails here.
func TestWireOptionsMapToSolverOptions(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	counts := map[string]int{}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		solverField := f.Name
		if f.Name == "Stats" {
			// The wire alias: `"stats": true` and `"collect_stats": true`
			// both drive schedule.Options.CollectStats.
			solverField = "CollectStats"
		}
		name, ok := schedule.OptionForField(solverField)
		if !ok {
			t.Errorf("wire Options field %s has no solver option (schedule.OptionForField(%q) missing)",
				f.Name, solverField)
			continue
		}
		counts[name]++
	}
	for name, n := range counts {
		want := 1
		if name == "stats" {
			want = 2 // the documented Stats/CollectStats alias pair
		}
		if n != want {
			t.Errorf("solver option %q reached by %d wire fields, want %d", name, n, want)
		}
	}
	// Solver-only options (procs, link_cap, trace) deliberately have no
	// wire spelling: the service owns worker counts, tenant shares and
	// tracing. Everything else must be reachable from the wire.
	wireless := map[string]bool{"procs": true, "link_cap": true, "trace": true}
	for _, name := range schedule.OptionNames() {
		if !wireless[name] && counts[name] == 0 {
			t.Errorf("solver option %q has no wire Options field and is not a declared solver-only option", name)
		}
	}
}

// TestToScheduleMatchesFunctionalOptions pins that the wire resolver
// and the functional-options constructor build the same solver
// configuration, so the two construction surfaces cannot diverge.
func TestToScheduleMatchesFunctionalOptions(t *testing.T) {
	wire := Options{
		Seed: 7, MaxPaths: 9, MaxOuter: 2, MaxInner: 30, Engine: "exact",
		Window: 120, LSDOnly: true, SyncMargin: 0.5, Retries: 3,
		AllowSharedNodes: true, Stats: true,
	}
	got, err := wire.ToSchedule()
	if err != nil {
		t.Fatal(err)
	}
	want := schedule.NewOptions(
		schedule.WithSeed(7),
		schedule.WithMaxPaths(9),
		schedule.WithMaxOuter(2),
		schedule.WithMaxInner(30),
		schedule.WithEngine(schedule.EngineExact),
		schedule.WithWindow(120),
		schedule.WithLSDOnly(true),
		schedule.WithSyncMargin(0.5),
		schedule.WithRetries(3),
		schedule.WithSharedNodes(true),
		schedule.WithStats(true),
	)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wire resolution diverged from functional options:\n got %+v\nwant %+v", got, want)
	}
}
