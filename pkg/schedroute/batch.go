package schedroute

// BatchScheduleRequest asks for many schedule computations in one
// round trip. The service groups items by problem structure, so a
// batch of same-structure sub-requests (a capacity-planning sweep over
// many periods, say) costs one structure build however many items it
// carries; fully identical sub-requests additionally share a single
// solve and a single encoded result.
type BatchScheduleRequest struct {
	SchemaVersion int               `json:"schema_version,omitempty"`
	Items         []ScheduleRequest `json:"items"`
}

// BatchItemResult is one item's outcome, errors isolated per item:
// exactly one of Result and Error is meaningful. A failed item carries
// the same {error, kind, detail} envelope its standalone request's
// error body would — derived from the same errkind table — so one
// infeasible or malformed item never fails its siblings and clients
// parse one error shape everywhere.
type BatchItemResult struct {
	Index  int             `json:"index"`
	Result *ScheduleResult `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Kind   string          `json:"kind,omitempty"`
	Detail string          `json:"detail,omitempty"`
}

// SetError fills the item's error fields from the shared envelope.
func (it *BatchItemResult) SetError(err error) {
	env := NewErrorEnvelope(err)
	it.Error, it.Kind, it.Detail = env.Error, env.Kind, env.Detail
}

// BatchScheduleResult answers a batch; Items is ordered by Index and
// has exactly one entry per request item.
type BatchScheduleResult struct {
	SchemaVersion int               `json:"schema_version"`
	Items         []BatchItemResult `json:"items"`
}
