package schedroute

// BatchScheduleRequest asks for many schedule computations in one
// round trip. The service groups items by problem structure, so a
// batch of same-structure sub-requests (a capacity-planning sweep over
// many periods, say) costs one structure build however many items it
// carries; fully identical sub-requests additionally share a single
// solve and a single encoded result.
type BatchScheduleRequest struct {
	SchemaVersion int               `json:"schema_version,omitempty"`
	Items         []ScheduleRequest `json:"items"`
}

// BatchItemResult is one item's outcome, errors isolated per item:
// exactly one of Result and Error is meaningful. A failed item carries
// its message plus the errkind label its standalone request would have
// mapped to an HTTP status, so one infeasible or malformed item never
// fails its siblings.
type BatchItemResult struct {
	Index  int             `json:"index"`
	Result *ScheduleResult `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Kind   string          `json:"kind,omitempty"`
}

// BatchScheduleResult answers a batch; Items is ordered by Index and
// has exactly one entry per request item.
type BatchScheduleResult struct {
	SchemaVersion int               `json:"schema_version"`
	Items         []BatchItemResult `json:"items"`
}
