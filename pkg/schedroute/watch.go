package schedroute

import (
	"fmt"

	"schedroute/internal/errkind"
)

// Watch wire vocabulary: /v1/watch turns the request/response repair
// API into a stream. A client registers a Problem and receives an SSE
// stream of frames; it pushes WatchEvents (faults striking, faults
// repaired, period changes) at the events endpoint and each event
// yields a schedule frame carrying the repair ladder's outcome for the
// subscription's cumulative fault state.
//
// Frame sequence numbers are monotonic per subscription and double as
// SSE ids, so a dropped connection resumes with a standard
// Last-Event-ID header against the server's bounded replay ring; a
// consumer that falls behind the ring is coalesced to the latest
// fault state (Gap marks the jump) rather than ever blocking the
// repair loop.

// Watch frame types.
const (
	// WatchFrameHello opens every new subscription stream: it carries
	// the subscription id and the base (fault-free) schedule result.
	WatchFrameHello = "hello"
	// WatchFrameSchedule carries one repaired schedule: the ladder
	// outcome for the fault state after an event applied.
	WatchFrameSchedule = "schedule"
	// WatchFrameHeartbeat keeps idle streams alive; it carries the
	// latest frame seq but no schedule payload and is never replayed.
	WatchFrameHeartbeat = "heartbeat"
	// WatchFrameGap precedes a frame delivered after skipped history:
	// the consumer fell behind the replay ring (or resumed past it) and
	// was coalesced to the latest fault state.
	WatchFrameGap = "gap"
	// WatchFrameError reports a rejected event or an internal failure;
	// Terminal distinguishes a subscription-fatal error from a skipped
	// event.
	WatchFrameError = "error"
	// WatchFrameClosing is the terminal frame of a graceful close:
	// client delete, idle reap, or server drain.
	WatchFrameClosing = "closing"
)

// Watch event types.
const (
	// WatchEventFault adds the named links/nodes to the fault state.
	WatchEventFault = "fault"
	// WatchEventRepaired removes the named links/nodes from the fault
	// state (they returned to service).
	WatchEventRepaired = "fault-repaired"
	// WatchEventTauIn changes the invocation period: the base schedule
	// is re-solved at the new τin and the fault state re-applied.
	WatchEventTauIn = "tau_in"
)

// WatchRequest registers a streaming reconfiguration subscription.
type WatchRequest struct {
	Problem Problem `json:"problem"`
	Options Options `json:"options,omitempty"`
	// Tenant scopes the subscription (v2); absent means the default
	// tenant.
	Tenant *Tenant `json:"tenant,omitempty"`
	// IncludeOmega embeds the repaired Ω artifact in every schedule
	// frame (and the base Ω in the hello frame).
	IncludeOmega bool `json:"include_omega,omitempty"`
	// Execute replays each repaired Ω through the deterministic
	// executor and attaches the OI-window check to the frame.
	Execute bool `json:"execute,omitempty"`
	// Invocations is the executor run length (0 = 8; only with Execute).
	Invocations int `json:"invocations,omitempty"`
}

// WatchEvent is one pushed reconfiguration event. Links use the same
// "u-v" node-pair syntax as FaultSpec.
type WatchEvent struct {
	SchemaVersion int `json:"schema_version,omitempty"`
	// Type is "fault", "fault-repaired", or "tau_in".
	Type  string   `json:"type"`
	Links []string `json:"links,omitempty"`
	Nodes []int    `json:"nodes,omitempty"`
	// TauIn is the new invocation period in µs (tau_in events only).
	TauIn float64 `json:"tau_in,omitempty"`
}

// Validate checks the event shape (element resolution against the
// topology happens server-side at enqueue time).
func (e WatchEvent) Validate() error {
	if err := CheckSchemaVersion(e.SchemaVersion); err != nil {
		return err
	}
	switch e.Type {
	case WatchEventFault, WatchEventRepaired:
		if len(e.Links) == 0 && len(e.Nodes) == 0 {
			return badInput("watch event %q: at least one link or node required", e.Type)
		}
		if e.TauIn != 0 {
			return badInput("watch event %q: tau_in is only valid on %q events", e.Type, WatchEventTauIn)
		}
	case WatchEventTauIn:
		if e.TauIn <= 0 {
			return badInput("watch event tau_in: period must be positive, got %g", e.TauIn)
		}
		if len(e.Links) != 0 || len(e.Nodes) != 0 {
			return badInput("watch event tau_in: links/nodes are not valid here")
		}
	case "":
		return badInput("watch event: type is required")
	default:
		return errkind.Mark(
			fmt.Errorf("schedroute: unknown watch event type %q (want %q, %q or %q)",
				e.Type, WatchEventFault, WatchEventRepaired, WatchEventTauIn),
			errkind.ErrBadInput)
	}
	return nil
}

// WatchEventAck is the response to a successfully enqueued event.
type WatchEventAck struct {
	SchemaVersion int `json:"schema_version"`
	// EventSeq is the monotonic per-subscription event number; the
	// frame this event produces carries it back as its event_seq.
	EventSeq int64 `json:"event_seq"`
}

// OICheck is the executor-verified output behaviour of a repaired Ω,
// attached to schedule frames when the subscription asked for Execute:
// the output-interval (OI) consistency check plus the measured
// normalized throughput.
type OICheck struct {
	// Invocations is the executor run length the check used.
	Invocations int `json:"invocations"`
	// ThroughputMid is the mid normalized throughput over the run.
	ThroughputMid float64 `json:"throughput_mid"`
	// OI is true when the output intervals are inconsistent — the
	// repaired schedule violates the constant-output-rate contract.
	OI bool `json:"oi"`
}

// WatchFrame is one SSE data payload. Seq doubles as the SSE id for
// replayable frames (hello, schedule, error, closing); heartbeat and
// gap frames carry the latest seq for orientation but no id line, so
// they never disturb Last-Event-ID resume.
type WatchFrame struct {
	SchemaVersion int    `json:"schema_version"`
	Seq           int64  `json:"seq"`
	Type          string `json:"type"`
	// SubID is the subscription id (hello frames; resume and event URLs
	// are built from it).
	SubID string `json:"sub_id,omitempty"`
	// EventSeq names the event that produced a schedule or error frame.
	EventSeq int64 `json:"event_seq,omitempty"`
	// State renders the cumulative fault population after the event
	// applied, e.g. "faults{links:3,17}".
	State string `json:"state,omitempty"`
	// TauIn is the subscription's current invocation period.
	TauIn float64 `json:"tau_in,omitempty"`
	// Schedule is the base schedule (hello frames and successful tau_in
	// rebases).
	Schedule *ScheduleResult `json:"schedule,omitempty"`
	// Repair is the ladder's outcome for the cumulative fault state —
	// byte-identical to what POST /v1/repair returns for the same
	// problem and fault set.
	Repair *RepairResult `json:"repair,omitempty"`
	// OI is the executor check of the frame's repaired Ω (Execute only).
	OI *OICheck `json:"oi,omitempty"`
	// Skipped counts frames coalesced away before this one (gap frames).
	Skipped int64 `json:"skipped,omitempty"`
	// Terminal marks the last frame of the stream (closing, fatal error).
	Terminal bool `json:"terminal,omitempty"`
	// Reason explains error and closing frames.
	Reason string `json:"reason,omitempty"`
	// Err carries the shared {error, kind, detail} envelope on error
	// frames — the same classification a standalone request's error
	// body would have, derived from the same errkind table.
	Err *ErrorEnvelope `json:"err,omitempty"`
	// Trace is the event's span tree (watch.event / watch.repair /
	// watch.deliver), attached only when the subscription was created
	// with ?debug=trace. Last field, like every other trace envelope.
	Trace *TraceEnvelope `json:"trace,omitempty"`
}
