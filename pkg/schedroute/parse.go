package schedroute

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/errkind"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// The spec parsers live in the facade so the CLIs (via
// internal/cliutil) and the service resolve identical strings to
// identical machines. Every rejection is an errkind.ErrBadInput, so the
// shared table maps it to exit 1 on a CLI and HTTP 400 on the service.

func badInput(format string, args ...any) error {
	return errkind.Mark(fmt.Errorf(format, args...), errkind.ErrBadInput)
}

// ParseTopology builds a topology from a spec string:
//
//	cube:D        binary hypercube of dimension D
//	ghc:M1,M2,..  generalized hypercube
//	torus:K1,K2,… k-ary n-cube torus
//	mesh:K1,K2,…  mesh
func ParseTopology(spec string) (*topology.Topology, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, badInput("topology spec %q: want kind:radices", spec)
	}
	var radices []int
	for _, part := range strings.Split(rest, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, badInput("topology spec %q: %v", spec, err)
		}
		radices = append(radices, v)
	}
	var top *topology.Topology
	var err error
	switch kind {
	case "cube":
		if len(radices) != 1 {
			return nil, badInput("cube spec wants a single dimension, got %q", spec)
		}
		top, err = topology.NewHypercube(radices[0])
	case "ghc":
		top, err = topology.NewGHC(radices...)
	case "torus":
		top, err = topology.NewTorus(radices...)
	case "mesh":
		top, err = topology.NewMesh(radices...)
	default:
		return nil, badInput("unknown topology kind %q", kind)
	}
	if err != nil {
		return nil, errkind.Mark(err, errkind.ErrBadInput)
	}
	return top, nil
}

// ParseAllocator places g on top using the named strategy: "rr"
// (round-robin, the experiments' default), "greedy", "random" (with
// the given seed), or "anneal" (simulated annealing on the link-load
// proxy).
func ParseAllocator(name string, g *tfg.Graph, top *topology.Topology, seed int64) (*alloc.Assignment, error) {
	switch name {
	case "rr", "roundrobin":
		return alloc.RoundRobin(g, top)
	case "greedy":
		return alloc.Greedy(g, top)
	case "random":
		return alloc.Random(g, top, seed)
	case "anneal":
		return alloc.Anneal(g, top, alloc.AnnealOptions{Seed: seed})
	default:
		return nil, badInput("unknown allocator %q (want rr, greedy, random or anneal)", name)
	}
}

// LoadGraph reads a TFG: either a built-in spec ("dvb:4", "chain:8",
// "fan:6", "fft:3", "stencil:4") or a path to a JSON file produced by
// tfggen.
func LoadGraph(spec string) (*tfg.Graph, error) {
	if kind, rest, ok := strings.Cut(spec, ":"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, badInput("graph spec %q: %v", spec, err)
		}
		switch kind {
		case "dvb":
			return dvb.New(n)
		case "chain":
			return tfg.Chain(n, 1925, 1536)
		case "fan":
			return tfg.FanOutIn(n, 1925, 1536)
		case "fft":
			return tfg.FFT(n, 1925, 1536)
		case "stencil":
			return tfg.Stencil(n, 1925, 1536, 384)
		default:
			return nil, badInput("unknown graph kind %q", kind)
		}
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, errkind.Mark(err, errkind.ErrBadInput)
	}
	defer f.Close()
	return tfg.Decode(f)
}

// Build resolves a FaultSpec against a topology into a FaultSet.
// Returns nil when the spec is empty.
func (f FaultSpec) Build(top *topology.Topology) (*topology.FaultSet, error) {
	if f.Empty() {
		return nil, nil
	}
	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	for _, spec := range f.Links {
		l, err := top.ParseLinkSpec(spec)
		if err != nil {
			return nil, errkind.Mark(err, errkind.ErrBadInput)
		}
		fs.FailLink(l)
	}
	for _, n := range f.Nodes {
		if n < 0 || n >= top.Nodes() {
			return nil, badInput("fault node %d out of range [0,%d)", n, top.Nodes())
		}
		fs.FailNode(topology.NodeID(n))
	}
	return fs, nil
}
