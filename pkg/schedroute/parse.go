package schedroute

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/errkind"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// The spec parsers live in the facade so the CLIs (via
// internal/cliutil) and the service resolve identical strings to
// identical machines. Every rejection is an errkind.ErrBadInput, so the
// shared table maps it to exit 1 on a CLI and HTTP 400 on the service.

func badInput(format string, args ...any) error {
	return errkind.Mark(fmt.Errorf(format, args...), errkind.ErrBadInput)
}

// ParseTopology builds a topology from a spec string:
//
//	cube:D        binary hypercube of dimension D
//	ghc:M1,M2,..  generalized hypercube
//	torus:K1,K2,… k-ary n-cube torus
//	mesh:K1,K2,…  mesh
func ParseTopology(spec string) (*topology.Topology, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, badInput("topology spec %q: want kind:radices", spec)
	}
	var radices []int
	for _, part := range strings.Split(rest, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, badInput("topology spec %q: %v", spec, err)
		}
		radices = append(radices, v)
	}
	var top *topology.Topology
	var err error
	switch kind {
	case "cube":
		if len(radices) != 1 {
			return nil, badInput("cube spec wants a single dimension, got %q", spec)
		}
		top, err = topology.NewHypercube(radices[0])
	case "ghc":
		top, err = topology.NewGHC(radices...)
	case "torus":
		top, err = topology.NewTorus(radices...)
	case "mesh":
		top, err = topology.NewMesh(radices...)
	default:
		return nil, badInput("unknown topology kind %q", kind)
	}
	if err != nil {
		return nil, errkind.Mark(err, errkind.ErrBadInput)
	}
	return top, nil
}

// ParseAllocator places g on top using the named strategy: "rr"
// (round-robin, the experiments' default), "greedy", "random" (with
// the given seed), or "anneal" (simulated annealing on the link-load
// proxy).
func ParseAllocator(name string, g *tfg.Graph, top *topology.Topology, seed int64) (*alloc.Assignment, error) {
	switch name {
	case "rr", "roundrobin":
		return alloc.RoundRobin(g, top)
	case "greedy":
		return alloc.Greedy(g, top)
	case "random":
		return alloc.Random(g, top, seed)
	case "anneal":
		return alloc.Anneal(g, top, alloc.AnnealOptions{Seed: seed})
	default:
		return nil, badInput("unknown allocator %q (want rr, greedy, random or anneal)", name)
	}
}

// LoadGraph reads a TFG: either a built-in spec ("dvb:4", "chain:8",
// "fan:6", "fft:3", "stencil:4", "layered:seed,widths...,density") or a
// path to a JSON file produced by tfggen.
func LoadGraph(spec string) (*tfg.Graph, error) {
	if kind, rest, ok := strings.Cut(spec, ":"); ok {
		if kind == "layered" {
			return parseLayered(spec, rest)
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, badInput("graph spec %q: %v", spec, err)
		}
		switch kind {
		case "dvb":
			return dvb.New(n)
		case "chain":
			return tfg.Chain(n, 1925, 1536)
		case "fan":
			return tfg.FanOutIn(n, 1925, 1536)
		case "fft":
			return tfg.FFT(n, 1925, 1536)
		case "stencil":
			return tfg.Stencil(n, 1925, 1536, 384)
		default:
			return nil, badInput("unknown graph kind %q", kind)
		}
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, errkind.Mark(err, errkind.ErrBadInput)
	}
	defer f.Close()
	return tfg.Decode(f)
}

// parseLayered resolves "layered:seed,w1,w2,...,density" into a
// deterministic tfg.RandomLayered graph (the large-scale benchmark
// workload): the first field is the generator seed, the last — the only
// one containing a '.' — is the extra-edge density, and the fields in
// between are layer widths, where "64*14" repeats a width 14 times.
// Ops and bytes ranges are fixed to the tfggen defaults (400-1925 ops,
// 192-3200 bytes) so a spec names exactly one graph.
func parseLayered(spec, rest string) (*tfg.Graph, error) {
	parts := strings.Split(rest, ",")
	if len(parts) < 3 {
		return nil, badInput("graph spec %q: want layered:seed,widths...,density", spec)
	}
	last := strings.TrimSpace(parts[len(parts)-1])
	if !strings.Contains(last, ".") {
		return nil, badInput("graph spec %q: final field %q must be a density like 0.03", spec, last)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return nil, badInput("graph spec %q: seed: %v", spec, err)
	}
	density, err := strconv.ParseFloat(last, 64)
	if err != nil {
		return nil, badInput("graph spec %q: density: %v", spec, err)
	}
	var widths []int
	for _, part := range parts[1 : len(parts)-1] {
		part = strings.TrimSpace(part)
		w, rep := part, 1
		if ws, rs, ok := strings.Cut(part, "*"); ok {
			w = strings.TrimSpace(ws)
			rep, err = strconv.Atoi(strings.TrimSpace(rs))
			if err != nil {
				return nil, badInput("graph spec %q: repeat %q: %v", spec, part, err)
			}
			if rep < 1 {
				return nil, badInput("graph spec %q: repeat %q must be >= 1", spec, part)
			}
		}
		v, err := strconv.Atoi(w)
		if err != nil {
			return nil, badInput("graph spec %q: width %q: %v", spec, part, err)
		}
		for i := 0; i < rep; i++ {
			widths = append(widths, v)
		}
	}
	g, err := tfg.RandomLayered(seed, widths, 400, 1925, 192, 3200, density)
	if err != nil {
		return nil, errkind.Mark(err, errkind.ErrBadInput)
	}
	return g, nil
}

// Build resolves a FaultSpec against a topology into a FaultSet.
// Returns nil when the spec is empty.
func (f FaultSpec) Build(top *topology.Topology) (*topology.FaultSet, error) {
	if f.Empty() {
		return nil, nil
	}
	fs := topology.NewFaultSet(top.Links(), top.Nodes())
	for _, spec := range f.Links {
		l, err := top.ParseLinkSpec(spec)
		if err != nil {
			return nil, errkind.Mark(err, errkind.ErrBadInput)
		}
		fs.FailLink(l)
	}
	for _, n := range f.Nodes {
		if n < 0 || n >= top.Nodes() {
			return nil, badInput("fault node %d out of range [0,%d)", n, top.Nodes())
		}
		fs.FailNode(topology.NodeID(n))
	}
	return fs, nil
}
