package schedroute

import (
	"math"

	"schedroute/internal/schedule"
)

// Admission wire vocabulary (v2): POST /v1/admit runs the multi-tenant
// admission check — solve the candidate against the bandwidth left by
// the already-admitted tenants, descending the degradation ladder
// (reserved → degraded-window → degraded-rate → eviction of strictly
// lower-priority tenants) — and reserves the candidate's link shares on
// success. Admitted tenants are never re-solved, so an admission can
// never change another tenant's Ω.

// AdmitRequest asks to admit one tenant into the shared fabric. The
// Problem names the fabric: every tenant admitted to one service
// instance must name the same topology (the fabric is shared; the
// applications differ).
type AdmitRequest struct {
	Problem Problem `json:"problem"`
	Options Options `json:"options,omitempty"`
	// Tenant identifies the candidate and its QoS contract. Absent
	// means the default tenant (priority 0, no rate guarantee).
	Tenant *Tenant `json:"tenant,omitempty"`
	// IncludeOmega embeds the admitted schedule's Ω in the response.
	IncludeOmega bool `json:"include_omega,omitempty"`
}

// AdmitResult is the wire form of schedule.AdmitReport. A rejection is
// delivered as the Admit field of a 422 ErrorResponse, carrying this
// same shape with Admitted false.
type AdmitResult struct {
	SchemaVersion int    `json:"schema_version"`
	TenantID      string `json:"tenant_id"`
	Admitted      bool   `json:"admitted"`
	// Outcome is the admission rung: "reserved", "degraded-window",
	// "degraded-rate", or "rejected".
	Outcome string `json:"outcome"`
	// TauOut is the granted output period (> the requested τin exactly
	// when Outcome is "degraded-rate"; 0 when rejected).
	TauOut float64 `json:"tau_out"`
	// WindowScale is the message-window widening factor applied (1
	// unless Outcome is "degraded-window").
	WindowScale float64 `json:"window_scale"`
	// Peak is the admitted schedule's peak utilization relative to the
	// residual shares it solved against; for a rejection, the best peak
	// any rung reached. A candidate probing a fully-reserved link has an
	// unbounded relative peak; JSON cannot carry ±Inf, so it is reported
	// as 0 (Reason explains the rejection).
	Peak float64 `json:"peak"`
	// Evicted lists tenants preempted to make room, in eviction order.
	Evicted []string `json:"evicted,omitempty"`
	// BottleneckLink and BottleneckShare describe the tightest link of
	// the residual the candidate solved against.
	BottleneckLink  int     `json:"bottleneck_link"`
	BottleneckShare float64 `json:"bottleneck_share"`
	// Reason carries a one-line diagnosis for rejections.
	Reason string `json:"reason,omitempty"`
	// Schedule is the admitted schedule (with Ω embedded when the
	// request set IncludeOmega); nil when rejected.
	Schedule *ScheduleResult `json:"schedule,omitempty"`
	// Trace is the admission's span tree, attached only under
	// ?debug=trace; last field for the same strip-and-compare reason as
	// ScheduleResult.Trace.
	Trace *TraceEnvelope `json:"trace,omitempty"`
}

// NewAdmitResult converts an AdmitReport into the wire form. b is the
// candidate's built problem (for the τ summary of the embedded
// schedule); the admitted Ω is embedded only when includeOmega is set.
func NewAdmitResult(b *Built, rep *schedule.AdmitReport, includeOmega bool) (*AdmitResult, error) {
	out := &AdmitResult{
		SchemaVersion:   SchemaVersion,
		TenantID:        rep.TenantID,
		Admitted:        rep.Admitted,
		Outcome:         rep.Outcome.String(),
		TauOut:          rep.TauOut,
		WindowScale:     rep.WindowScale,
		Peak:            finiteOrZero(rep.Peak),
		Evicted:         rep.Evicted,
		BottleneckLink:  int(rep.BottleneckLink),
		BottleneckShare: finiteOrZero(rep.BottleneckShare),
		Reason:          rep.Reason,
	}
	if rep.Result != nil {
		sr, err := NewScheduleResult(b, rep.Result, rep.TauOut, includeOmega, false)
		if err != nil {
			return nil, err
		}
		out.Schedule = sr
	}
	return out, nil
}

// finiteOrZero guards wire floats against ±Inf/NaN, which the JSON
// encoder rejects outright (failing the whole response body).
func finiteOrZero(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}
