package schedroute

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schedroute/internal/errkind"
)

// TestCheckSchemaVersionMatrix: v2 builds accept 0 ("current"), the v1
// schema, and the v2 schema; everything else — including the
// next-version 3 a future build might speak — is an unknown-version
// rejection, never a silent acceptance.
func TestCheckSchemaVersionMatrix(t *testing.T) {
	for _, v := range []int{0, SchemaVersionV1, SchemaVersion} {
		if err := CheckSchemaVersion(v); err != nil {
			t.Errorf("schema_version %d rejected: %v", v, err)
		}
	}
	for _, v := range []int{3, -1, 99} {
		err := CheckSchemaVersion(v)
		if !errors.Is(err, errkind.ErrUnknownVersion) {
			t.Errorf("schema_version %d: got %v, want ErrUnknownVersion", v, err)
		}
	}
}

// decodeStrict mirrors the service's request decoding (unknown fields
// rejected), so the goldens prove real wire payloads parse.
func decodeStrict(t *testing.T, path string, into any) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", path))
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}

// TestScheduleRequestGoldenBothVersions pins the request wire format
// for both schema versions: the frozen v1 payload (no tenant block)
// must keep decoding exactly as before the tenant dimension existed —
// it resolves to the default tenant — and the v2 payload's tenant block
// must land in the typed fields. Both validate, and both resolve to the
// same structure key, so v1 and v2 requests for one problem share one
// cached Solver.
func TestScheduleRequestGoldenBothVersions(t *testing.T) {
	var v1, v2 ScheduleRequest
	decodeStrict(t, "schedule_request.v1.golden.json", &v1)
	decodeStrict(t, "schedule_request.v2.golden.json", &v2)

	if err := v1.Problem.Validate(); err != nil {
		t.Fatalf("v1 golden rejected: %v", err)
	}
	if err := v2.Problem.Validate(); err != nil {
		t.Fatalf("v2 golden rejected: %v", err)
	}

	if v1.Tenant != nil {
		t.Fatalf("v1 golden grew a tenant: %+v", v1.Tenant)
	}
	ten := TenantOrDefault(v1.Tenant)
	if ten.ID != DefaultTenantID || ten.Priority != 0 || ten.RateGuarantee != 0 {
		t.Fatalf("v1 tenant resolution: %+v", ten)
	}

	want := Tenant{ID: "video", Priority: 10, RateGuarantee: 0.8}
	if v2.Tenant == nil || *v2.Tenant != want {
		t.Fatalf("v2 tenant: got %+v, want %+v", v2.Tenant, want)
	}
	if err := TenantOrDefault(v2.Tenant).Validate(); err != nil {
		t.Fatalf("v2 tenant invalid: %v", err)
	}

	if k1, k2 := v1.Problem.StructureKey(), v2.Problem.StructureKey(); k1 != k2 {
		t.Fatalf("v1 and v2 requests for one problem split the solver cache: %q vs %q", k1, k2)
	}
}

// TestV1RoundTripUnchanged: a request built the v1 way (no tenant)
// must serialize without any v2 vocabulary, so v1 clients echoing
// requests through logs, queues, or proxies never see fields they do
// not know.
func TestV1RoundTripUnchanged(t *testing.T) {
	req := ScheduleRequest{
		Problem: Problem{SchemaVersion: SchemaVersionV1, TFG: "dvb:4", Topology: "cube:6"},
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"tenant", "rate_guarantee", "priority"} {
		if strings.Contains(string(raw), banned) {
			t.Errorf("tenant-less request leaked %q on the wire: %s", banned, raw)
		}
	}
	var back ScheduleRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tenant != nil {
		t.Fatalf("round trip invented a tenant: %+v", back.Tenant)
	}
}

func TestTenantValidate(t *testing.T) {
	good := []Tenant{{}, {ID: "a"}, {ID: "a", RateGuarantee: 1}, {RateGuarantee: 0.5}}
	for _, tn := range good {
		if err := tn.Validate(); err != nil {
			t.Errorf("tenant %+v rejected: %v", tn, err)
		}
	}
	for _, tn := range []Tenant{{RateGuarantee: -0.1}, {RateGuarantee: 1.5}} {
		if err := tn.Validate(); !errors.Is(err, errkind.ErrBadInput) {
			t.Errorf("tenant %+v: got %v, want ErrBadInput", tn, err)
		}
	}
}

// TestErrorEnvelopeTableDrift: the envelope constructor must agree with
// the errkind table row by row — same kind label, same detail line —
// for every family, plus the generic fallback. This is the guard that
// keeps the three error surfaces (top-level responses, batch items,
// watch frames) from drifting: they all call NewErrorEnvelope.
func TestErrorEnvelopeTableDrift(t *testing.T) {
	for _, c := range errkind.Table {
		env := NewErrorEnvelope(errkind.Mark(errors.New("boom"), c.Kind))
		if env.Kind != c.Name || env.Detail != c.Detail || env.Error != "boom" {
			t.Errorf("family %s: envelope %+v drifted from table row %+v", c.Name, env, c)
		}
	}
	env := NewErrorEnvelope(errors.New("boom"))
	if env.Kind != errkind.Generic.Name || env.Detail != errkind.Generic.Detail {
		t.Errorf("generic envelope %+v drifted from %+v", env, errkind.Generic)
	}
}
