package schedroute

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"schedroute/internal/schedule"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestScheduleResultWireGolden pins the wire format byte-for-byte
// against testdata: NewProblem and the tracing layer must not move,
// rename, or reorder a single field of the pre-existing response
// schema. Regenerate deliberately with `go test -run Golden -update`
// and bump SchemaVersion when the diff is intended.
func TestScheduleResultWireGolden(t *testing.T) {
	b, err := NewProblem(Problem{TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64, TauIn: 150})
	if err != nil {
		t.Fatal(err)
	}
	opts, err := Options{}.ToSchedule()
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Compute(b.ScheduleProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewScheduleResult(b, res, b.TauIn, true, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "schedule_result.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./pkg/schedroute -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s\ngot:  %.400s\nwant: %.400s", path, got, want)
	}
}

// TestNewProblemMatchesBuild: the Build method is now a thin alias for
// the canonical constructor, so both paths must agree exactly.
func TestNewProblemMatchesBuild(t *testing.T) {
	spec := Problem{TFG: "dvb:4", Topology: "ghc:4,4,4", Bandwidth: 128, Allocator: "greedy"}
	a, err := NewProblem(spec)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a.Spec)
	bj, _ := json.Marshal(bb.Spec)
	if !bytes.Equal(aj, bj) {
		t.Errorf("resolved specs differ: %s vs %s", aj, bj)
	}
	if a.TauIn != bb.TauIn || a.Spec.StructureKey() != bb.Spec.StructureKey() {
		t.Errorf("NewProblem and Build disagree: τin %g/%g key %q/%q",
			a.TauIn, bb.TauIn, a.Spec.StructureKey(), bb.Spec.StructureKey())
	}
}
