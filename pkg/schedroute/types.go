// Package schedroute is the stable public API facade of the
// scheduled-routing reproduction: the wire-level request and response
// types shared by the srschedd HTTP service and the command-line tools,
// plus the spec parsers and builders that turn a wire Problem into the
// internal solver inputs.
//
// Everything here carries explicit JSON tags and a schema_version, so a
// saved request, a service response, and a CLI invocation all speak the
// same versioned vocabulary. The internal packages stay free to evolve;
// this package is the compatibility surface.
package schedroute

import (
	"encoding/json"
	"fmt"
	"time"

	"schedroute/internal/errkind"
	"schedroute/internal/schedule"
	"schedroute/internal/trace"
)

// SchemaVersion is the wire schema this build speaks. Requests may
// carry 0 (meaning "current"), SchemaVersionV1, or this exact value;
// responses always carry it. Unknown versions are rejected with an
// errkind.ErrUnknownVersion error.
//
// v2 added the tenant dimension: a Tenant block on schedule, repair,
// sweep, watch and batch requests, the /v1/admit vocabulary, and the
// Detail/Admit fields of ErrorResponse. Every v1 payload is a valid v2
// payload — an absent Tenant means the default tenant — so v1 clients
// round-trip unchanged.
const SchemaVersion = 2

// SchemaVersionV1 is the tenant-less wire schema. Requests carrying it
// are accepted and read as the default tenant's.
const SchemaVersionV1 = 1

// CheckSchemaVersion validates a request's schema_version field.
func CheckSchemaVersion(v int) error {
	if v != 0 && v != SchemaVersion && v != SchemaVersionV1 {
		return errkind.Mark(
			fmt.Errorf("schedroute: schema_version %d not supported (this build speaks %d and accepts %d)",
				v, SchemaVersion, SchemaVersionV1),
			errkind.ErrUnknownVersion)
	}
	return nil
}

// DefaultTenantID is the tenant every v1 (or tenant-less v2) request
// belongs to. It exists so the tenant dimension is total: metrics
// labels, batch group keys and admission registries never need a
// "no tenant" case.
const DefaultTenantID = "default"

// Tenant identifies the owner of a request in the multi-tenant
// co-scheduler and carries its QoS contract. Absent (nil) on a request
// it means the default tenant with no guarantee — exactly the v1
// semantics.
type Tenant struct {
	// ID names the tenant. Empty is normalized to DefaultTenantID.
	ID string `json:"id,omitempty"`
	// Priority orders the admission eviction ladder: a candidate may
	// evict only tenants with strictly lower priority. Default 0.
	Priority int `json:"priority,omitempty"`
	// RateGuarantee is the minimum acceptable output rate as a fraction
	// of the requested rate, in (0, 1]: admission may degrade the
	// tenant's rate to no less than RateGuarantee·(1/τin). 0 means no
	// guarantee (any degradation rung is acceptable).
	RateGuarantee float64 `json:"rate_guarantee,omitempty"`
}

// TenantOrDefault resolves an optional wire tenant to its effective
// value: nil or an empty ID becomes the default tenant.
func TenantOrDefault(t *Tenant) Tenant {
	if t == nil {
		return Tenant{ID: DefaultTenantID}
	}
	out := *t
	if out.ID == "" {
		out.ID = DefaultTenantID
	}
	return out
}

// Validate checks a wire tenant's QoS fields.
func (t Tenant) Validate() error {
	if t.RateGuarantee < 0 || t.RateGuarantee > 1 {
		return badInput("tenant %q: rate_guarantee must be in [0, 1], got %g",
			t.ID, t.RateGuarantee)
	}
	return nil
}

// Problem is the wire form of a scheduling problem: the application,
// the machine, and the invocation period, all as specs the builders in
// this package resolve. The zero values select the defaults the CLIs
// have always used (bandwidth 64 bytes/µs, uniform 50 µs tasks,
// round-robin placement, τin = τc).
type Problem struct {
	SchemaVersion int `json:"schema_version,omitempty"`
	// TFG is a graph spec: "dvb:N", "chain:N", "fan:N", "fft:N",
	// "stencil:N", or a path to a tfggen JSON file.
	TFG string `json:"tfg,omitempty"`
	// TFGInline carries the tfggen JSON document itself, for callers
	// (e.g. remote service clients) with no shared filesystem. Exactly
	// one of TFG and TFGInline must be set.
	TFGInline json.RawMessage `json:"tfg_inline,omitempty"`
	// Topology is a spec like "cube:6", "ghc:4,4,4", "torus:8,8",
	// "mesh:4,4".
	Topology string `json:"topology"`
	// Bandwidth is the link bandwidth in bytes/µs (0 = 64).
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Speed is the processor speed in ops/µs (0 = uniform 50 µs tasks).
	Speed float64 `json:"speed,omitempty"`
	// TauIn is the invocation period in µs (0 = τc, maximum load).
	TauIn float64 `json:"tau_in,omitempty"`
	// Allocator places tasks on nodes: "rr" (default), "greedy",
	// "random", or "anneal".
	Allocator string `json:"allocator,omitempty"`
	// AllocSeed drives the "random" and "anneal" allocators.
	AllocSeed int64 `json:"alloc_seed,omitempty"`
}

// Options is the wire form of schedule.Options (the per-solve tuning
// knobs; zero values select the pipeline defaults).
type Options struct {
	Seed             int64   `json:"seed,omitempty"`
	MaxPaths         int     `json:"max_paths,omitempty"`
	MaxOuter         int     `json:"max_outer,omitempty"`
	MaxInner         int     `json:"max_inner,omitempty"`
	Engine           string  `json:"engine,omitempty"` // "auto", "greedy", "exact"
	Window           float64 `json:"window,omitempty"`
	LSDOnly          bool    `json:"lsd_only,omitempty"`
	SyncMargin       float64 `json:"sync_margin,omitempty"`
	Retries          int     `json:"retries,omitempty"`
	AllowSharedNodes bool    `json:"allow_shared_nodes,omitempty"`
	// CollectStats asks for wall-clock per-stage timings in the result
	// stats (the deterministic counters are reported either way).
	CollectStats bool `json:"collect_stats,omitempty"`
	// Stats is the wire-level alias for CollectStats: `"stats": true`
	// asks the service to return attempts, AssignPaths evaluations, and
	// per-stage times in the response. Either field enables the timings;
	// Stats reads better in hand-written requests.
	Stats bool `json:"stats,omitempty"`
}

// WantStats reports whether the request asked for wall-clock stage
// timings on the wire, under either spelling.
func (o Options) WantStats() bool { return o.Stats || o.CollectStats }

// ToSchedule resolves the wire options into schedule.Options.
func (o Options) ToSchedule() (schedule.Options, error) {
	out := schedule.Options{
		Seed: o.Seed, MaxPaths: o.MaxPaths, MaxOuter: o.MaxOuter, MaxInner: o.MaxInner,
		Window: o.Window, LSDOnly: o.LSDOnly, SyncMargin: o.SyncMargin, Retries: o.Retries,
		AllowSharedNodes: o.AllowSharedNodes, CollectStats: o.WantStats(),
	}
	switch o.Engine {
	case "", "auto":
		out.Engine = schedule.EngineAuto
	case "greedy":
		out.Engine = schedule.EngineGreedy
	case "exact":
		out.Engine = schedule.EngineExact
	default:
		return out, errkind.Mark(
			fmt.Errorf("schedroute: unknown engine %q (want auto, greedy or exact)", o.Engine),
			errkind.ErrBadInput)
	}
	return out, nil
}

// FaultSpec names failed elements: links as "u-v" node pairs and nodes
// by id.
type FaultSpec struct {
	Links []string `json:"links,omitempty"`
	Nodes []int    `json:"nodes,omitempty"`
}

// Empty reports whether no fault is named.
func (f FaultSpec) Empty() bool { return len(f.Links) == 0 && len(f.Nodes) == 0 }

// ScheduleRequest asks for one schedule computation.
type ScheduleRequest struct {
	Problem Problem `json:"problem"`
	Options Options `json:"options,omitempty"`
	// Tenant scopes the request in the multi-tenant co-scheduler (v2);
	// absent means the default tenant.
	Tenant *Tenant `json:"tenant,omitempty"`
	// IncludeOmega embeds the full Ω artifact (the versioned JSON the
	// -save flag writes) in the response.
	IncludeOmega bool `json:"include_omega,omitempty"`
}

// SolveStats is the wire form of schedule.SolveStats. The wall-clock
// fields are nanoseconds and stay zero unless CollectStats was set.
type SolveStats struct {
	Attempts         int   `json:"attempts"`
	AssignIterations int   `json:"assign_iterations"`
	WindowsNS        int64 `json:"windows_ns,omitempty"`
	AssignNS         int64 `json:"assign_ns,omitempty"`
	AllocateNS       int64 `json:"allocate_ns,omitempty"`
	ScheduleNS       int64 `json:"schedule_ns,omitempty"`
	OmegaNS          int64 `json:"omega_ns,omitempty"`
}

func statsToWire(st schedule.SolveStats) *SolveStats {
	return &SolveStats{
		Attempts:         st.Attempts,
		AssignIterations: st.AssignIterations,
		WindowsNS:        int64(st.WindowsTime / time.Nanosecond),
		AssignNS:         int64(st.AssignTime / time.Nanosecond),
		AllocateNS:       int64(st.AllocateTime / time.Nanosecond),
		ScheduleNS:       int64(st.ScheduleTime / time.Nanosecond),
		OmegaNS:          int64(st.OmegaTime / time.Nanosecond),
	}
}

// ScheduleResult is the stable outcome of one schedule computation.
// An infeasible problem is a valid result (Feasible false, FailStage
// naming the rejecting stage), not an error.
type ScheduleResult struct {
	SchemaVersion int    `json:"schema_version"`
	Feasible      bool   `json:"feasible"`
	FailStage     string `json:"fail_stage,omitempty"`

	TauC  float64 `json:"tau_c"`
	TauM  float64 `json:"tau_m"`
	TauIn float64 `json:"tau_in"`
	Load  float64 `json:"load"`

	PeakLSD float64 `json:"peak_lsd"`
	Peak    float64 `json:"peak"`
	Latency float64 `json:"latency,omitempty"`

	Intervals int `json:"intervals,omitempty"`
	Slices    int `json:"slices,omitempty"`
	Commands  int `json:"commands,omitempty"`

	// Omega is the versioned Ω JSON artifact (present only when the
	// request set IncludeOmega and the problem was feasible).
	Omega json.RawMessage `json:"omega,omitempty"`
	Stats *SolveStats     `json:"stats,omitempty"`

	// Trace is the solve's span tree, attached only under ?debug=trace.
	// Deliberately the LAST field: encoding/json emits struct fields in
	// declaration order, so stripping the trailing trace object from a
	// traced response yields exactly the untraced bytes (pinned by
	// TestScheduleDebugTraceGolden).
	Trace *TraceEnvelope `json:"trace,omitempty"`
}

// TraceEnvelope is the schema-versioned wire wrapper around a span
// tree, attached to responses only when the request asked for
// ?debug=trace.
type TraceEnvelope struct {
	SchemaVersion int         `json:"schema_version"`
	Root          *trace.Tree `json:"root"`
}

// NewTraceEnvelope wraps a snapshot for the wire; nil in, nil out.
func NewTraceEnvelope(t *trace.Tree) *TraceEnvelope {
	if t == nil {
		return nil
	}
	return &TraceEnvelope{SchemaVersion: SchemaVersion, Root: t}
}

// RepairRequest asks for a schedule and its repair under a fault: the
// base schedule is computed (or recalled from the service's solver
// cache) for the fault-free problem, then the degradation ladder runs
// against the fault.
type RepairRequest struct {
	Problem Problem   `json:"problem"`
	Options Options   `json:"options,omitempty"`
	Fault   FaultSpec `json:"fault"`
	// Tenant scopes the repair in the multi-tenant co-scheduler (v2);
	// absent means the default tenant.
	Tenant *Tenant `json:"tenant,omitempty"`
	// IncludeOmega embeds the repaired Ω in the response.
	IncludeOmega bool `json:"include_omega,omitempty"`
}

// RepairResult is the wire form of schedule.RepairReport.
type RepairResult struct {
	SchemaVersion int `json:"schema_version"`
	// Outcome is the repair-ladder rung: "unaffected", "incremental",
	// "recomputed", "degraded-window", "degraded-rate", "infeasible".
	Outcome string `json:"outcome"`
	// Stage names the pipeline stage that rejected the final attempt
	// when Outcome is "infeasible".
	Stage       string  `json:"stage,omitempty"`
	Faults      string  `json:"faults"`
	Affected    int     `json:"affected"`
	Rerouted    int     `json:"rerouted"`
	NewPeak     float64 `json:"new_peak"`
	TauOut      float64 `json:"tau_out"`
	WindowScale float64 `json:"window_scale"`
	LostTasks   bool    `json:"lost_tasks,omitempty"`
	Reason      string  `json:"reason,omitempty"`
	// Omega is the repaired Ω (present only when the request set
	// IncludeOmega and the repair succeeded).
	Omega json.RawMessage `json:"omega,omitempty"`
	// Trace is the repair ladder's span tree, attached only under
	// ?debug=trace; last field for the same strip-and-compare reason as
	// ScheduleResult.Trace.
	Trace *TraceEnvelope `json:"trace,omitempty"`
}

// SweepRequest asks for a τin sweep: the solver runs once per load
// point over [MinTauIn, MaxTauIn] through one cached Solver, fanned out
// on the parallel sweep engine.
//
// Deprecated: SweepRequest and /v1/sweep are the legacy shape of a
// grid-mode ExploreRequest and are served as a thin adapter over it
// (ToExplore / ExploreResult.SweepResult) — responses stay
// byte-identical to the pre-explore service. New clients should POST
// /v1/explore, which also offers placement axes and Pareto objectives.
type SweepRequest struct {
	Problem Problem `json:"problem"`
	Options Options `json:"options,omitempty"`
	// Tenant scopes the sweep (v2); absent means the default tenant.
	Tenant *Tenant `json:"tenant,omitempty"`
	// Points is the number of load points (0 = 12, the paper's grid).
	Points int `json:"points,omitempty"`
	// MinTauIn and MaxTauIn bound the sweep (0 = τc and 5τc).
	MinTauIn float64 `json:"min_tau_in,omitempty"`
	MaxTauIn float64 `json:"max_tau_in,omitempty"`
	// Execute replays each feasible Ω through the deterministic executor
	// and reports throughput and output-inconsistency per point.
	Execute bool `json:"execute,omitempty"`
	// Invocations is the executor run length (0 = 8; only with Execute).
	Invocations int `json:"invocations,omitempty"`
}

// SweepPoint is one load point of a sweep.
type SweepPoint struct {
	TauIn     float64 `json:"tau_in"`
	Load      float64 `json:"load"`
	Feasible  bool    `json:"feasible"`
	FailStage string  `json:"fail_stage,omitempty"`
	PeakLSD   float64 `json:"peak_lsd"`
	Peak      float64 `json:"peak"`
	Latency   float64 `json:"latency,omitempty"`
	// Executed marks that the emitted Ω was replayed; ThroughputMid is
	// the mid normalized throughput and OI flags output inconsistency.
	Executed      bool    `json:"executed,omitempty"`
	ThroughputMid float64 `json:"throughput_mid,omitempty"`
	OI            bool    `json:"oi,omitempty"`
}

// SweepResult is the outcome of a τin sweep.
type SweepResult struct {
	SchemaVersion int          `json:"schema_version"`
	TauC          float64      `json:"tau_c"`
	TauM          float64      `json:"tau_m"`
	Points        []SweepPoint `json:"points"`
}

// ErrorEnvelope is the shared {error, kind, detail} triple every
// failure surface emits: top-level error responses, per-item batch
// errors, and watch error frames all derive it from the same errkind
// table, so a client parses one shape everywhere.
type ErrorEnvelope struct {
	// Error is the concrete error message.
	Error string `json:"error"`
	// Kind is the errkind table label ("bad_input",
	// "infeasible_repair", "admission_rejected", "internal", ...).
	Kind string `json:"kind"`
	// Detail is the table's stable one-line description of the kind.
	Detail string `json:"detail,omitempty"`
}

// NewErrorEnvelope classifies err through the errkind table. It is the
// only constructor: every error body in the service funnels through
// here so the three surfaces cannot drift.
func NewErrorEnvelope(err error) ErrorEnvelope {
	c, _ := errkind.Classify(err)
	return ErrorEnvelope{Error: err.Error(), Kind: c.Name, Detail: c.Detail}
}

// ErrorResponse is the JSON body of every non-2xx service response:
// the shared envelope plus the schema header and any structured report
// explaining the rejection.
type ErrorResponse struct {
	SchemaVersion int `json:"schema_version"`
	ErrorEnvelope
	// Repair carries the full degradation-ladder report when an
	// infeasible repair is the reason for the failure status.
	Repair *RepairResult `json:"repair,omitempty"`
	// Admit carries the full admission report when a rejected tenant
	// admission is the reason for the failure status (HTTP 422).
	Admit *AdmitResult `json:"admit,omitempty"`
}
