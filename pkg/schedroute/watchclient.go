package schedroute

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"schedroute/internal/errkind"
)

// WatchClient consumes a srschedd /v1/watch subscription: it registers
// the problem over SSE, surfaces frames on a channel, and reconnects
// dropped streams with exponential backoff plus jitter, resuming from
// the last delivered frame via the standard Last-Event-ID header. Used
// by `srsched -watch` and the watch smoke test; kept dependency-free
// (net/http + bufio) like the rest of this package.
type WatchClient struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient). Streaming
	// requests need a client without a global Timeout.
	HTTP *http.Client
	// Backoff is the initial reconnect delay (default 200ms), doubling
	// per consecutive failure up to MaxBackoff (default 5s), with up to
	// 50% uniform jitter on top.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxRetries bounds consecutive failed reconnect attempts before
	// the stream gives up (default 5; the counter resets after any
	// successful connect).
	MaxRetries int
	// Seed drives the jitter; a fixed seed makes retry schedules
	// reproducible in tests (0 seeds from the clock).
	Seed int64
}

func (c *WatchClient) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *WatchClient) backoffs() (time.Duration, time.Duration, int) {
	b, mx, r := c.Backoff, c.MaxBackoff, c.MaxRetries
	if b <= 0 {
		b = 200 * time.Millisecond
	}
	if mx <= 0 {
		mx = 5 * time.Second
	}
	if r <= 0 {
		r = 5
	}
	return b, mx, r
}

// WatchStream is a live subscription. Frames delivers every frame in
// order (heartbeats and gap markers included) and is closed when the
// stream ends: after a terminal frame, a context cancellation, or
// reconnect exhaustion. Err reports why a stream ended early.
type WatchStream struct {
	// ID is the subscription id from the hello frame.
	ID string
	// Frames delivers the stream.
	Frames <-chan WatchFrame

	done <-chan struct{}
	err  error
}

// Err returns the terminal error after Frames closes (nil on a clean
// closing frame).
func (s *WatchStream) Err() error {
	<-s.done
	return s.err
}

// Subscribe registers the problem and starts the stream. The returned
// WatchStream's ID is known (the hello frame is awaited) before
// Subscribe returns; the hello frame itself is the first delivery on
// Frames. Cancel ctx to drop the subscription client-side.
func (c *WatchClient) Subscribe(ctx context.Context, req WatchRequest) (*WatchStream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/watch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeErrorResponse(resp)
	}

	frames := make(chan WatchFrame, 16)
	done := make(chan struct{})
	st := &WatchStream{Frames: frames, done: done}

	// The hello frame arrives synchronously so the caller leaves with a
	// usable subscription id.
	sr := newSSEReader(resp.Body)
	hello, err := sr.next()
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("schedroute: watch: no hello frame: %w", err)
	}
	if hello.Type != WatchFrameHello || hello.SubID == "" {
		resp.Body.Close()
		return nil, fmt.Errorf("schedroute: watch: first frame is %q, want hello with a sub_id", hello.Type)
	}
	st.ID = hello.SubID

	go c.pump(ctx, st, resp.Body, sr, hello, frames, done)
	return st, nil
}

// pump forwards frames, reconnecting dropped transports with
// backoff+jitter until a terminal frame, ctx cancellation, or retry
// exhaustion.
func (c *WatchClient) pump(ctx context.Context, st *WatchStream, body io.ReadCloser, sr *sseReader, first WatchFrame, frames chan<- WatchFrame, done chan<- struct{}) {
	defer close(done)
	defer close(frames)

	base, maxb, maxRetries := c.backoffs()
	seed := c.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))

	lastID := int64(0)
	deliver := func(f WatchFrame) bool {
		if f.Seq > lastID && f.Type != WatchFrameHeartbeat && f.Type != WatchFrameGap {
			lastID = f.Seq
		}
		select {
		case frames <- f:
		case <-ctx.Done():
			return false
		}
		return !f.Terminal
	}
	if !deliver(first) {
		body.Close()
		return
	}

	fails := 0
	for {
		// Drain the current transport.
		readErr := error(nil)
		for {
			f, err := sr.next()
			if err != nil {
				readErr = err
				break
			}
			fails = 0
			if !deliver(f) {
				body.Close()
				return
			}
		}
		body.Close()
		if ctx.Err() != nil {
			st.err = ctx.Err()
			return
		}

		// Reconnect with Last-Event-ID resume.
		for {
			fails++
			if fails > maxRetries {
				st.err = fmt.Errorf("schedroute: watch: stream lost after %d reconnect attempts: %w", maxRetries, readErr)
				return
			}
			d := base << (fails - 1)
			if d > maxb {
				d = maxb
			}
			d += time.Duration(rng.Int63n(int64(d)/2 + 1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				st.err = ctx.Err()
				return
			}
			nb, nsr, err := c.attach(ctx, st.ID, lastID)
			if err != nil {
				readErr = err
				continue
			}
			body, sr = nb, nsr
			break
		}
	}
}

// attach reopens the stream of an existing subscription, resuming
// after the given frame seq.
func (c *WatchClient) attach(ctx context.Context, id string, lastID int64) (io.ReadCloser, *sseReader, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/watch/"+id, nil)
	if err != nil {
		return nil, nil, err
	}
	hr.Header.Set("Accept", "text/event-stream")
	if lastID > 0 {
		hr.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, nil, decodeErrorResponse(resp)
	}
	return resp.Body, newSSEReader(resp.Body), nil
}

// Send pushes one event at a subscription and returns its ack.
// Transport failures (a pooled connection killed under the request, a
// daemon restart) retry on the same backoff schedule the stream
// reconnect uses, so delivery is at-least-once: if an ack is lost
// after the server processed the event, the replay is answered with a
// non-terminal error frame ("already failed" / "not failed"), never
// corrupted state. Service-level errors (4xx/5xx bodies) do not retry.
func (c *WatchClient) Send(ctx context.Context, id string, ev WatchEvent) (WatchEventAck, error) {
	var ack WatchEventAck
	body, err := json.Marshal(ev)
	if err != nil {
		return ack, err
	}
	base, maxb, maxRetries := c.backoffs()
	seed := c.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; ; attempt++ {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/watch/"+id+"/events", bytes.NewReader(body))
		if err != nil {
			return ack, err
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := c.http().Do(hr)
		if err != nil {
			if ctx.Err() != nil || attempt >= maxRetries {
				return ack, err
			}
			d := base << attempt
			if d > maxb {
				d = maxb
			}
			d += time.Duration(rng.Int63n(int64(d)/2 + 1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ack, ctx.Err()
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ack, decodeErrorResponse(resp)
		}
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return ack, err
		}
		return ack, nil
	}
}

// Close deletes the subscription server-side; attached streams receive
// a terminal closing frame.
func (c *WatchClient) Close(ctx context.Context, id string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/watch/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return decodeErrorResponse(resp)
	}
	return nil
}

// decodeErrorResponse turns a non-2xx service body into an error
// marked with the errkind family the response's kind names, so CLI
// exit statuses work through the client too.
func decodeErrorResponse(resp *http.Response) error {
	var er ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		err := fmt.Errorf("schedroute: service %s: %s", resp.Status, er.Error)
		if k := errkind.ByName(er.Kind); k != nil {
			return errkind.Mark(err, k)
		}
		return err
	}
	return fmt.Errorf("schedroute: service %s: %s", resp.Status, strings.TrimSpace(string(raw)))
}

// sseReader parses text/event-stream payloads into WatchFrames. Only
// the fields this protocol emits are handled: id, event, data, and
// comment lines (ignored).
type sseReader struct {
	br *bufio.Reader
}

func newSSEReader(r io.Reader) *sseReader {
	return &sseReader{br: bufio.NewReader(r)}
}

// next blocks until one complete SSE event arrives and returns its
// decoded frame.
func (r *sseReader) next() (WatchFrame, error) {
	var f WatchFrame
	var data []byte
	seen := false
	for {
		line, err := r.br.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if !seen {
				continue // stray blank between events
			}
			if err := json.Unmarshal(data, &f); err != nil {
				return f, fmt.Errorf("schedroute: watch: bad frame payload: %w", err)
			}
			return f, nil
		case strings.HasPrefix(line, ":"):
			// comment / keepalive
		case strings.HasPrefix(line, "data:"):
			seen = true
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case strings.HasPrefix(line, "id:"), strings.HasPrefix(line, "event:"):
			seen = true // metadata duplicated inside the JSON payload
		}
	}
}
