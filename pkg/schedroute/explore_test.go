package schedroute

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestExploreRequestMode(t *testing.T) {
	if m := (ExploreRequest{}).Mode(); m != ExploreModeGrid {
		t.Errorf("empty objectives: mode %q, want grid", m)
	}
	r := ExploreRequest{Objectives: []string{"tau_in", "latency"}}
	if m := r.Mode(); m != ExploreModePareto {
		t.Errorf("objectives named: mode %q, want pareto", m)
	}
}

func TestExploreRequestValidate(t *testing.T) {
	ok := ExploreRequest{
		Axes: ExploreAxes{
			TauIn:     &TauInAxis{Points: 4, Min: 50, Max: 250},
			Placement: &PlacementAxis{Allocators: []string{"greedy"}, AnnealSeeds: []int64{2}},
		},
		Objectives: []string{"tau_in"},
		Tolerance:  1,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	bad := []ExploreRequest{
		{Axes: ExploreAxes{TauIn: &TauInAxis{Min: -1}}},
		{Axes: ExploreAxes{TauIn: &TauInAxis{Min: 100, Max: 50}}},
		{Axes: ExploreAxes{TauIn: &TauInAxis{Points: 100001}}},
		{Tolerance: -1},
		{Objectives: []string{"latency"}, Execute: true},
		{Axes: ExploreAxes{Placement: &PlacementAxis{Allocators: []string{"magic"}}}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, r)
		}
	}
}

// TestSweepAdapterShape pins the sweep → explore adapter field by
// field: a legacy sweep request is exactly a grid-mode exploration over
// the τin axis, and the result projection drops exactly the
// explore-only fields.
func TestSweepAdapterShape(t *testing.T) {
	sr := SweepRequest{
		Problem:     Problem{TFG: "chain:4", Topology: "torus:4,4", TauIn: 100},
		Options:     Options{Seed: 3},
		Tenant:      &Tenant{ID: "t1"},
		Points:      7,
		MinTauIn:    60,
		MaxTauIn:    300,
		Execute:     true,
		Invocations: 4,
	}
	er := sr.ToExplore()
	if er.Mode() != ExploreModeGrid {
		t.Errorf("adapter produced mode %q, want grid", er.Mode())
	}
	want := ExploreRequest{
		Problem: sr.Problem,
		Options: sr.Options,
		Tenant:  sr.Tenant,
		Axes: ExploreAxes{TauIn: &TauInAxis{
			Points: 7, Min: 60, Max: 300,
		}},
		Execute:     true,
		Invocations: 4,
	}
	if !reflect.DeepEqual(er, want) {
		t.Errorf("adapter mismatch:\n got %+v\nwant %+v", er, want)
	}

	res := &ExploreResult{
		SchemaVersion: SchemaVersion,
		Mode:          ExploreModeGrid,
		TauC:          50,
		TauM:          10,
		Points: []SweepPoint{
			{TauIn: 60, Load: 50.0 / 60, Feasible: true, Peak: 0.9},
		},
		Winners: []int{0},
	}
	sw := res.SweepResult()
	if sw.SchemaVersion != SchemaVersion || sw.TauC != 50 || sw.TauM != 10 {
		t.Errorf("projection header mismatch: %+v", sw)
	}
	if !reflect.DeepEqual(sw.Points, res.Points) {
		t.Errorf("projection points mismatch")
	}
}

// goldenJSON pins a wire value byte-for-byte against testdata.
func goldenJSON(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./pkg/schedroute -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s\ngot:  %.600s\nwant: %.600s", path, got, want)
	}
}

// TestExploreWireGolden pins the new explore request/result schema, and
// the legacy sweep shapes the adapter must keep serving, byte for byte.
func TestExploreWireGolden(t *testing.T) {
	req := ExploreRequest{
		Problem:    Problem{SchemaVersion: SchemaVersion, TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Options:    Options{Seed: 1},
		Objectives: []string{"tau_in", "latency", "links", "buffers"},
		Axes: ExploreAxes{
			TauIn:     &TauInAxis{Points: 3, Max: 250},
			Placement: &PlacementAxis{Allocators: []string{"greedy"}, AnnealSeeds: []int64{2, 3}},
		},
		Tolerance: 0.5,
	}
	goldenJSON(t, "explore_request.golden.json", req)

	res := ExploreResult{
		SchemaVersion: SchemaVersion,
		Mode:          ExploreModePareto,
		TauC:          50,
		TauM:          30.078125,
		MinTauIn:      50,
		Objectives:    []string{"tau_in", "latency", "links", "buffers"},
		Placements: []PlacementOutcome{
			{Source: "problem", Feasible: true, MinTauIn: 124.21875},
			{Source: "allocator:greedy", Feasible: true, MinTauIn: 50},
			{Source: "anneal:2", Feasible: true, MinTauIn: 50},
		},
		Evaluated: 9,
		Front: []ParetoPoint{
			{Placement: 2, TauIn: 50, Load: 1, Window: 50, Latency: 850, Links: 21, Buffers: 17, Peak: 1},
			{Placement: 0, TauIn: 250, Load: 0.2, Window: 50, Latency: 850, Links: 20, Buffers: 17, Peak: 1},
		},
	}
	goldenJSON(t, "explore_result.golden.json", res)

	// The legacy sweep shapes, served through the adapter: these bytes
	// must never change while /v1/sweep exists.
	sreq := SweepRequest{
		Problem:  Problem{SchemaVersion: SchemaVersion, TFG: "dvb:4", Topology: "cube:6", Bandwidth: 64},
		Options:  Options{Seed: 1},
		Points:   3,
		MaxTauIn: 250,
	}
	goldenJSON(t, "sweep_request.golden.json", sreq)
	sres := SweepResult{
		SchemaVersion: SchemaVersion,
		TauC:          50,
		TauM:          30.078125,
		Points: []SweepPoint{
			{TauIn: 50, Load: 1, Feasible: false, FailStage: "allocation", PeakLSD: 1.5, Peak: 1.2},
			{TauIn: 150, Load: 1.0 / 3, Feasible: true, PeakLSD: 0.5, Peak: 0.4, Latency: 850},
		},
	}
	goldenJSON(t, "sweep_result.golden.json", sres)
}
