package schedroute

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"schedroute/internal/alloc"
	"schedroute/internal/errkind"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

// Built is a wire Problem resolved into the internal solver inputs.
type Built struct {
	// Spec is the normalized wire problem (defaults applied).
	Spec       Problem
	Graph      *tfg.Graph
	Timing     *tfg.Timing
	Topology   *topology.Topology
	Assignment *alloc.Assignment
	// TauIn is the resolved invocation period (the spec's 0 becomes τc).
	TauIn float64
}

// withDefaults normalizes the spec: explicit defaults so equal problems
// produce equal structure keys regardless of which zero values the
// caller spelled out.
func (p Problem) withDefaults() Problem {
	out := p
	out.SchemaVersion = SchemaVersion
	if out.Bandwidth == 0 {
		out.Bandwidth = 64
	}
	if out.Allocator == "" {
		out.Allocator = "rr"
	}
	return out
}

// Validate checks the spec's shape without building anything.
func (p Problem) Validate() error {
	if err := CheckSchemaVersion(p.SchemaVersion); err != nil {
		return err
	}
	if p.TFG == "" && len(p.TFGInline) == 0 {
		return badInput("problem: one of tfg or tfg_inline is required")
	}
	if p.TFG != "" && len(p.TFGInline) > 0 {
		return badInput("problem: tfg and tfg_inline are mutually exclusive")
	}
	if p.Topology == "" {
		return badInput("problem: topology is required")
	}
	if p.Bandwidth < 0 || p.Speed < 0 || p.TauIn < 0 {
		return badInput("problem: bandwidth, speed and tau_in must be non-negative")
	}
	return nil
}

// Build resolves the wire problem into its internal solver inputs.
// It is a thin wrapper over NewProblem, kept for callers that read
// better flowing off the spec value.
func (p Problem) Build() (*Built, error) { return NewProblem(p) }

// NewProblem is the canonical problem constructor: every path from a
// wire spec to solver inputs — service request handling, the CLIs'
// cliutil.ParseProblem, sweep endpoints — funnels through here, so a
// spec resolves to the same graph, timing, topology, placement and
// effective invocation period no matter who asks. Every rejection is an
// errkind.ErrBadInput (or ErrUnknownVersion) so callers derive the exit
// or HTTP status from the shared table.
func NewProblem(p Problem) (*Built, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spec := p.withDefaults()
	var g *tfg.Graph
	var err error
	if len(spec.TFGInline) > 0 {
		g, err = tfg.Decode(bytes.NewReader(spec.TFGInline))
		if err != nil {
			return nil, errkind.Mark(fmt.Errorf("tfg_inline: %w", err), errkind.ErrBadInput)
		}
	} else {
		g, err = LoadGraph(spec.TFG)
		if err != nil {
			return nil, err
		}
	}
	top, err := ParseTopology(spec.Topology)
	if err != nil {
		return nil, err
	}
	var tm *tfg.Timing
	if spec.Speed > 0 {
		tm, err = tfg.NewTiming(g, spec.Speed, spec.Bandwidth)
	} else {
		tm, err = tfg.NewUniformTiming(g, 50, spec.Bandwidth)
	}
	if err != nil {
		return nil, errkind.Mark(err, errkind.ErrBadInput)
	}
	as, err := ParseAllocator(spec.Allocator, g, top, spec.AllocSeed)
	if err != nil {
		return nil, err
	}
	tauIn := spec.TauIn
	if tauIn == 0 {
		tauIn = tm.TauC()
	}
	return &Built{Spec: spec, Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn}, nil
}

// ScheduleProblem packages the built inputs for the scheduling
// pipeline (fault-free; repairs construct their own degraded problems).
func (b *Built) ScheduleProblem() schedule.Problem {
	return b.ScheduleProblemAt(b.TauIn)
}

// ScheduleProblemAt packages the built inputs at an explicit invocation
// period. This is the form a structure cache needs: one Built is keyed
// by StructureKey — which deliberately excludes τin — so a cached
// Built's own TauIn belongs to whichever request created it, and every
// later request must supply its own period here rather than inherit it.
func (b *Built) ScheduleProblemAt(tauIn float64) schedule.Problem {
	return schedule.Problem{
		Graph: b.Graph, Timing: b.Timing, Topology: b.Topology,
		Assignment: b.Assignment, TauIn: tauIn,
	}
}

// StructureKey is the canonical identity of everything a
// schedule.Solver caches: the problem minus the invocation period.
// Requests with equal keys can share one Solver (the τin-independent
// candidates, baseline, and task starts), which is exactly how the
// service's solver cache is keyed.
func (p Problem) StructureKey() string {
	spec := p.withDefaults()
	tfgID := spec.TFG
	if len(spec.TFGInline) > 0 {
		sum := sha256.Sum256(spec.TFGInline)
		tfgID = "inline:" + hex.EncodeToString(sum[:])
	}
	// AllocSeed only matters for the seeded allocators; folding it to 0
	// otherwise keeps "rr seed 1" and "rr seed 2" on one Solver.
	seed := spec.AllocSeed
	if spec.Allocator != "random" && spec.Allocator != "anneal" {
		seed = 0
	}
	return fmt.Sprintf("v%d|tfg=%s|topo=%s|bw=%g|speed=%g|alloc=%s|seed=%d",
		SchemaVersion, tfgID, spec.Topology, spec.Bandwidth, spec.Speed, spec.Allocator, seed)
}
