// Compare: the Section 3 output-inconsistency mechanism in isolation.
// Two critical-path messages of successive invocations share a channel
// under wormhole routing's FCFS arbitration; the example prints the raw
// output intervals so the alternating delay pattern is visible, then
// shows scheduled routing removing it on the identical placement.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"schedroute/internal/alloc"
	"schedroute/internal/metrics"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/internal/wormhole"
)

func main() {
	// The claim's setup: M1 from T1s to T1d and M2 from T2s to T2d with
	// T1d preceding T2s, mapped so both messages traverse the eastbound
	// channels of links 1-2 and 2-3 of an 8-node ring.
	b := tfg.NewBuilder("claim")
	t1s := b.AddTask("T1s", 100)
	t1d := b.AddTask("T1d", 100)
	t2s := b.AddTask("T2s", 100)
	t2d := b.AddTask("T2d", 100)
	b.AddMessage("M1", t1s, t1d, 512)
	b.AddMessage("link", t1d, t2s, 128)
	b.AddMessage("M2", t2s, t2d, 512)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	top, err := topology.NewTorus(8)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 10, 64) // exec 10 µs, M1/M2 8 µs
	if err != nil {
		log.Fatal(err)
	}
	as := &alloc.Assignment{NodeOf: []topology.NodeID{0, 3, 1, 4}}

	const tauIn = 32
	fmt.Println("wormhole routing, τin = 32 µs:")
	wres, err := wormhole.Simulate(wormhole.Config{
		Graph: g, Timing: tm, Topology: top, Assignment: as,
		TauIn: tauIn, Invocations: 12, Warmup: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	ivs := metrics.Intervals(wres.OutputCompletions)
	for i, iv := range ivs {
		marker := ""
		if iv != tauIn {
			marker = "   <-- not the input period"
		}
		fmt.Printf("  output interval %2d: %5.1f µs%s\n", i, iv, marker)
	}
	fmt.Printf("  output inconsistency: %v\n\n", metrics.OutputInconsistent(tauIn, ivs, 1e-6))

	fmt.Println("scheduled routing, same placement and period:")
	sres, err := schedule.Compute(schedule.Problem{
		Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn,
	}, schedule.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !sres.Feasible {
		log.Fatalf("unexpectedly infeasible at %s", sres.FailStage)
	}
	exec, err := schedule.Execute(sres.Omega, g, tm, tm.TauC(), 12)
	if err != nil {
		log.Fatal(err)
	}
	sivs := metrics.Intervals(exec.OutputCompletions)
	for i, iv := range sivs[:8] {
		fmt.Printf("  output interval %2d: %5.1f µs\n", i, iv)
	}
	fmt.Printf("  output inconsistency: %v\n", metrics.OutputInconsistent(tauIn, sivs, 1e-9))
	fmt.Printf("  latency every invocation: %.1f µs\n", exec.Latencies[0])

	// Show a couple of switching schedules — the artifact a real CP
	// would execute.
	fmt.Println("\nswitching schedule at node 1 (T2s's node):")
	for _, c := range sres.Omega.CommandsAt(1) {
		fmt.Printf("  every frame [%6.2f, %6.2f): %s -> %s (message %s)\n",
			c.Start, c.End, c.In, c.Out, g.Message(c.Msg).Name)
	}
}
