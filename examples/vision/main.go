// Vision: the paper's motivating scenario end to end. The DARPA Vision
// Benchmark task-flow graph is pipelined on a binary 6-cube; the example
// sweeps the input arrival period and reports, per load point, whether
// wormhole routing sustains the input rate (and with what jitter) and
// whether scheduled routing finds a contention-free schedule.
//
//	go run ./examples/vision
package main

import (
	"fmt"
	"log"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/metrics"
	"schedroute/internal/schedule"
	"schedroute/internal/topology"
	"schedroute/internal/wormhole"
)

func main() {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		log.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := dvb.Timing(g, 64) // communication-intensive: τm = τc
	if err != nil {
		log.Fatal(err)
	}
	as, err := alloc.RoundRobin(g, top)
	if err != nil {
		log.Fatal(err)
	}
	cp, chain := g.CriticalPath(tm)
	fmt.Printf("DVB with %d object models: %d tasks, %d messages\n",
		dvb.DefaultModels, g.NumTasks(), g.NumMessages())
	fmt.Printf("critical path %.0f µs through %d tasks; τc = %.0f µs, τm = %.0f µs\n\n",
		cp, len(chain), tm.TauC(), tm.TauM())

	fmt.Printf("%-22s %-30s %-20s\n", "camera frame period", "wormhole routing", "scheduled routing")
	for _, tauIn := range []float64{50, 75, 100, 141, 200, 250} {
		wres, err := wormhole.Simulate(wormhole.Config{
			Graph: g, Timing: tm, Topology: top, Assignment: as,
			TauIn: tauIn, Invocations: 30, Warmup: 15,
		})
		if err != nil {
			log.Fatal(err)
		}
		var wr string
		if wres.Deadlocked {
			wr = "deadlock"
		} else {
			ivs := metrics.Intervals(wres.OutputCompletions)
			if metrics.OutputInconsistent(tauIn, ivs, 1e-6) {
				sp, err := metrics.Summarize(ivs)
				if err != nil {
					log.Fatal(err)
				}
				if sp.Max-sp.Min < 1e-6 {
					wr = fmt.Sprintf("SATURATED (outputs every %.0f µs)", sp.Mid)
				} else {
					wr = fmt.Sprintf("INCONSISTENT (%.0f–%.0f µs)", sp.Min, sp.Max)
				}
			} else {
				wr = "steady"
			}
		}

		sres, err := schedule.Compute(schedule.Problem{
			Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: tauIn,
		}, schedule.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		sr := fmt.Sprintf("infeasible (%s)", sres.FailStage)
		if sres.Feasible {
			sr = fmt.Sprintf("guaranteed, latency %.0f µs", sres.Latency)
		}
		fmt.Printf("%-22s %-30s %-20s\n",
			fmt.Sprintf("%.0f µs (load %.2f)", tauIn, tm.TauC()/tauIn), wr, sr)
	}

	fmt.Println("\nThe crossover is the paper's point: as the frame rate rises,")
	fmt.Println("wormhole routing first jitters (output inconsistency), while")
	fmt.Println("scheduled routing either guarantees the rate or says at compile")
	fmt.Println("time that the network cannot support it. Feasibility is not")
	fmt.Println("monotone in the period: the frame-relative alignment of message")
	fmt.Println("windows changes with τin, so a slower rate can be harder to")
	fmt.Println("schedule than a faster one (the paper's Fig. 9 shows the same).")
}
