// Quickstart: build a small task-flow graph, place it on a hypercube,
// compute a scheduled-routing communication schedule, and verify the
// constant-throughput guarantee by executing it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"schedroute/internal/alloc"
	"schedroute/internal/metrics"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

func main() {
	// 1. Describe the application as a task-flow graph: four tasks in a
	// diamond, every edge carrying 1536 bytes.
	b := tfg.NewBuilder("quickstart")
	capture := b.AddTask("capture", 1925)
	edges := b.AddTask("edges", 1925)
	regions := b.AddTask("regions", 1925)
	classify := b.AddTask("classify", 1925)
	b.AddMessage("img-e", capture, edges, 1536)
	b.AddMessage("img-r", capture, regions, 1536)
	b.AddMessage("e-c", edges, classify, 1536)
	b.AddMessage("r-c", regions, classify, 1536)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Fix the machine: a binary 4-cube with 64-byte/µs links, every
	// task taking τc = 50 µs.
	top, err := topology.NewHypercube(4)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Place tasks on nodes (communication-aware greedy placement).
	as, err := alloc.Greedy(g, top)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compute the schedule for a 100 µs input period (load 0.5).
	res, err := schedule.Compute(schedule.Problem{
		Graph: g, Timing: tm, Topology: top, Assignment: as, TauIn: 100,
	}, schedule.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatalf("no feasible schedule: failed at %s", res.FailStage)
	}
	fmt.Printf("schedule computed: peak utilization %.3f (LSD-to-MSD gave %.3f)\n",
		res.Peak, res.PeakLSD)
	fmt.Printf("%d intervals, %d slices, %d switching commands across %d nodes\n",
		res.Intervals.K(), len(res.Slices), res.Omega.NumCommands(), top.Nodes())

	// 5. Execute ten invocations and confirm the paper's guarantee:
	// outputs appear exactly one input period apart.
	exec, err := schedule.Execute(res.Omega, g, tm, tm.TauC(), 10)
	if err != nil {
		log.Fatal(err)
	}
	ivs := metrics.Intervals(exec.OutputCompletions)
	fmt.Printf("output intervals: %v\n", ivs)
	th, err := metrics.NormalizedThroughput(100, ivs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output inconsistency: %v (throughput spike %s)\n",
		metrics.OutputInconsistent(100, ivs, 1e-9), th)
	fmt.Printf("every invocation completes %.0f µs after it starts\n", exec.Latencies[0])
}
