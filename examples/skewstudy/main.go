// Skewstudy: how tightly must communication processors be synchronized?
// Scheduled routing's guarantees assume CPs execute their switching
// schedules in lockstep; the paper's Section 7 proposes waiting out at
// least twice the maximum clock difference before each transmission.
// This example computes a DVB schedule, then injects increasing random
// clock skew into the packet-level CP simulator and reports when the
// schedule starts to break — and how much tolerance a sync margin buys.
//
//	go run ./examples/skewstudy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"schedroute/internal/alloc"
	"schedroute/internal/cpsim"
	"schedroute/internal/dvb"
	"schedroute/internal/schedule"
	"schedroute/internal/topology"
)

func main() {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		log.Fatal(err)
	}
	top, err := topology.NewHypercube(6)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := dvb.Timing(g, 128) // slack-rich regime so margins fit
	if err != nil {
		log.Fatal(err)
	}
	as, err := alloc.Greedy(g, top)
	if err != nil {
		log.Fatal(err)
	}
	prob := schedule.Problem{
		Graph: g, Timing: tm, Topology: top, Assignment: as,
		TauIn: 50 * (1 + 4.0*8/11), // load 0.256
	}

	for _, guard := range []float64{0, 2} {
		res, err := schedule.Compute(prob, schedule.Options{Seed: 1, SyncMargin: guard})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Feasible {
			fmt.Printf("guard %.0f µs: infeasible (%s)\n", guard, res.FailStage)
			continue
		}
		fmt.Printf("schedule with sync margin %.0f µs, CPs applying guard %.0f µs (latency %.0f µs):\n",
			guard, guard, res.Latency)
		rng := rand.New(rand.NewSource(7))
		for _, bound := range []float64{0, 0.5, 1, 2, 4} {
			skew := make([]float64, top.Nodes())
			for i := range skew {
				skew[i] = (rng.Float64()*2 - 1) * bound
			}
			out, err := cpsim.Run(cpsim.Config{
				Omega: res.Omega, Graph: g, Topology: top,
				PacketBytes: 64, Bandwidth: 128, Skew: skew, Guard: guard,
			})
			if err != nil {
				log.Fatal(err)
			}
			status := "clean"
			if len(out.Violations) > 0 {
				status = fmt.Sprintf("%d reservation violations", len(out.Violations))
			}
			fmt.Printf("  clock skew ±%-5.1f µs: %s\n", bound, status)
		}
		fmt.Println()
	}
	fmt.Println("Without a guard, any differential skew breaks the reservations.")
	fmt.Println("With the source CPs waiting out a guard interval (and schedules")
	fmt.Println("computed with a matching sync margin), skews up to half the")
	fmt.Println("guard pass cleanly — the paper's 'at least twice the maximum")
	fmt.Println("clock difference' rule. Beyond that bound violations reappear,")
	fmt.Println("so the guard must be sized for the worst clock difference.")
}
