// Mapping: the paper's full chain on one page — "Mapping an application
// on multicomputers involves partitioning, task allocation, node
// scheduling, and message routing." A fine-grained operation graph is
// partitioned into large-grain tasks, the tasks are placed on a
// multicomputer, and scheduled routing compiles the communication
// schedule, with the coupled allocation search picking the placement
// that schedules best.
//
//	go run ./examples/mapping
package main

import (
	"context"
	"fmt"
	"log"

	"schedroute/internal/partition"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
)

func main() {
	// A fine-grained image pipeline: 40 small operations in ten layers.
	fine, err := tfg.RandomLayered(11, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4}, 100, 400, 128, 1024, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fine grain: %d tasks, %d messages\n", fine.NumTasks(), fine.NumMessages())

	// 1. Partition to 12 large-grain tasks, minimizing cut bytes.
	part, err := partition.Partition(fine, partition.Options{MaxTasks: 12, BalanceFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	g := part.Coarse
	fmt.Printf("partitioned: %d tasks, %d messages; %d bytes absorbed internally, %d bytes cut\n",
		g.NumTasks(), g.NumMessages(), part.InternalBytes, part.CutBytes)

	// 2. The machine: a 4x4 torus at 64 bytes/µs, uniform 50 µs tasks.
	top, err := topology.NewTorus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := tfg.NewUniformTiming(g, 50, 64)
	if err != nil {
		log.Fatal(err)
	}
	prob := schedule.Problem{
		Graph: g, Timing: tm, Topology: top,
		TauIn: 2.5 * tm.TauC(), // load 0.4
	}

	// 3+4. Coupled allocation and routing: try round-robin, greedy and
	// random placements, keep whichever schedules best (Section 7's
	// suggested coupling).
	cands, err := schedule.DefaultCandidates(context.Background(), prob, 3, 7, 11)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := schedule.ComputeBestAllocation(context.Background(), prob, schedule.Options{Seed: 1}, cands)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"round-robin", "greedy", "random(3)", "random(7)", "random(11)"}
	res := sr.Result
	fmt.Printf("allocation search: %s wins with peak utilization %.3f (LSD-to-MSD gave %.3f)\n",
		names[sr.Chosen], res.Peak, res.PeakLSD)
	if !res.Feasible {
		fmt.Printf("no feasible schedule at this load; best failure stage: %s\n", res.FailStage)
		return
	}
	fmt.Printf("feasible: latency %.0f µs over %d switching commands; every output exactly %.0f µs apart\n",
		res.Latency, res.Omega.NumCommands(), prob.TauIn)

	// Verify end to end.
	exec, err := schedule.Execute(res.Omega, g, tm, tm.TauC(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed 8 invocations: first output at %.0f µs, last at %.0f µs, all intervals equal: %v\n",
		exec.OutputCompletions[0], exec.OutputCompletions[7],
		allEqualIntervals(exec.OutputCompletions, prob.TauIn))
}

func allEqualIntervals(completions []float64, want float64) bool {
	for i := 1; i < len(completions); i++ {
		if diff := completions[i] - completions[i-1] - want; diff > 1e-9 || diff < -1e-9 {
			return false
		}
	}
	return true
}
