// Capacity: compile-time admission control. One of scheduled routing's
// selling points (Section 7) is that it "enables prediction of system
// performance at compile-time by deciding if the network meets the
// communication requirements". This example asks, for each topology:
// what is the fastest input rate the DVB pipeline can be guaranteed at?
// It binary-searches the admissible period over the scheduled-routing
// pipeline and prints the resulting guaranteed frame rates.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"schedroute/internal/alloc"
	"schedroute/internal/dvb"
	"schedroute/internal/schedule"
	"schedroute/internal/topology"
)

func main() {
	g, err := dvb.New(dvb.DefaultModels)
	if err != nil {
		log.Fatal(err)
	}

	type machine struct {
		name string
		top  *topology.Topology
		bw   float64
	}
	machines := []machine{
		{"binary 6-cube @ 64 B/µs", mustCube(6), 64},
		{"binary 6-cube @ 128 B/µs", mustCube(6), 128},
		{"GHC(4,4,4) @ 64 B/µs", mustGHC(4, 4, 4), 64},
		{"8x8 torus @ 128 B/µs", mustTorus(8, 8), 128},
		{"4x4x4 torus @ 128 B/µs", mustTorus(4, 4, 4), 128},
	}

	fmt.Println("guaranteed sustainable input periods for the DVB pipeline")
	fmt.Println("(smallest τin on the paper's 12-point grid with a feasible Ω)")
	fmt.Println()
	for _, m := range machines {
		tm, err := dvb.Timing(g, m.bw)
		if err != nil {
			log.Fatal(err)
		}
		as, err := alloc.RoundRobin(g, m.top)
		if err != nil {
			log.Fatal(err)
		}
		best := -1.0
		// Walk the paper's grid from the fastest rate down; take the
		// first (smallest) period that admits a schedule.
		for k := 0; k < 12; k++ {
			tauIn := tm.TauC() * (1 + 4*float64(k)/11)
			res, err := schedule.Compute(schedule.Problem{
				Graph: g, Timing: tm, Topology: m.top, Assignment: as, TauIn: tauIn,
			}, schedule.Options{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			if res.Feasible {
				best = tauIn
				break
			}
		}
		if best < 0 {
			fmt.Printf("  %-28s no guaranteed rate (utilization above 1 at every grid period)\n", m.name)
			continue
		}
		fmt.Printf("  %-28s τin >= %6.1f µs  (%.1f frames/sec at 1 frame per invocation)\n",
			m.name, best, 1e6/best)
	}
	fmt.Println()
	fmt.Println("Wormhole routing offers no such admission test: the same")
	fmt.Println("question can only be answered by simulating and observing jitter.")
}

func mustCube(d int) *topology.Topology {
	t, err := topology.NewHypercube(d)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func mustGHC(r ...int) *topology.Topology {
	t, err := topology.NewGHC(r...)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func mustTorus(r ...int) *topology.Topology {
	t, err := topology.NewTorus(r...)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
