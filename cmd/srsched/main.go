// Command srsched computes a scheduled-routing communication schedule Ω
// for a task-flow graph on a multicomputer topology and reports the
// result: message time bounds, peak utilization, and per-node switching
// schedules.
//
// Usage:
//
//	srsched -tfg dvb:4 -topo cube:6 -bw 64 -tauin 141
//	srsched -tfg graph.json -topo torus:8,8 -bw 128 -tauin 75 -dump
//	srsched -tfg dvb:4 -topo cube:6 -tauin 141 -fail-link 0-1 -verify-packets 64
//	srsched -tfg dvb:4 -topo cube:6 -tauin 141 -trace -trace-out trace.json
//	srsched -tfg dvb:4 -topo cube:6 -tauin 141 -save-snapshot warm.json
//	srsched -tfg dvb:4 -topo cube:6 -tauin 150 -load-snapshot warm.json
//	srsched -tfg dvb:4 -topo cube:6 -tauin 150 -fail-link 0-1 -watch http://localhost:8080
//	srsched -tfg dvb:4 -topo cube:6 -tauin 50 -admit http://localhost:8080 -tenant video -priority 5 -rate 0.5
//	srsched -tfg dvb:4 -topo cube:6 -bw 64 -explore -anneal-seeds 2,3
//
// With -fail-link u-v the computed schedule is repaired for the named
// link fault through the degradation ladder (incremental reroute, full
// recompute, widened windows, reduced rate); -fail-node fails a node
// instead. Combined with -verify-packets, the repaired Ω is replayed
// with the fault injected mid-run. An infeasible repair exits with
// status 3.
//
// With -watch URL nothing is solved locally: the problem is registered
// as a /v1/watch subscription on a running srschedd, the fault (or a
// -watch-events random scenario) is replayed as watch events, and each
// incrementally repaired frame is printed as it streams back.
//
// With -admit URL the problem is submitted as a tenant admission
// (POST /v1/admit) against the shared fabric of a running srschedd:
// -tenant names the tenant, -priority ranks it for eviction, and -rate
// sets the minimum acceptable τin/τout fraction. An admission the
// degradation ladder cannot satisfy exits with status 4 and prints the
// rejection report. The same -tenant flag scopes a -watch subscription
// to an admitted tenant's standing schedule.
//
// With -explore the tool searches the Pareto front over τin × latency ×
// resources instead of solving one period: the -alloc placement and one
// annealed placement per -anneal-seeds entry are each bisected to their
// minimal feasible τin, a ladder of candidate periods above each
// minimum is solved for latency- and footprint-minimal schedules, and
// the non-dominated points are printed. -best, -admit, -watch and
// -explore are mutually exclusive modes; combining them exits with
// status 2.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"schedroute/internal/cliutil"
	"schedroute/internal/cpsim"
	"schedroute/internal/errkind"
	"schedroute/internal/experiments"
	"schedroute/internal/faults"
	"schedroute/internal/gantt"
	"schedroute/internal/schedule"
	"schedroute/internal/tfg"
	"schedroute/internal/topology"
	"schedroute/internal/trace"
	"schedroute/pkg/schedroute"
)

func main() {
	pf := cliutil.AddProblemFlags(flag.CommandLine)
	pf.AddFaultFlags(flag.CommandLine)
	lsdOnly := flag.Bool("lsd", false, "skip AssignPaths, keep LSD-to-MSD paths")
	dump := flag.Bool("dump", false, "print every node switching schedule")
	margin := flag.Float64("margin", 0, "CP clock-skew margin in µs (Section 7)")
	retries := flag.Int("retries", 0, "AssignPaths feedback retries on downstream failure")
	save := flag.String("save", "", "write the computed Ω as JSON to this file")
	saveSnap := flag.String("save-snapshot", "", "write the solver-structure snapshot (candidates, LSD baseline, starts) to this file after solving, for srschedd -warmstart-dir pre-baking")
	loadSnap := flag.String("load-snapshot", "", "hydrate the solver from this snapshot file instead of deriving structure cold; the snapshot must match the problem flags")
	packets := flag.Int("verify-packets", 0, "re-verify Ω by packet-level CP simulation with this packet size (bytes)")
	chart := flag.Bool("gantt", false, "render the frame's link occupancy as an ASCII chart")
	shared := flag.Bool("shared", false, "allow several tasks per node (AP-sharing node schedule)")
	best := flag.Int("best", 0, "search this many random placements (plus rr and greedy) in parallel and keep the best schedule")
	procs := flag.Int("procs", 0, "worker goroutines for the -best candidate search (0 = GOMAXPROCS, 1 = serial)")
	stats := flag.Bool("stats", false, "report pipeline attempts, AssignPaths evaluations and per-stage wall-clock times")
	showTrace := flag.Bool("trace", false, "record the solve pipeline as a span tree and render it after the run")
	traceOut := flag.String("trace-out", "", "write the recorded trace as Chrome trace_event JSON to this file (implies tracing)")
	watch := flag.String("watch", "", "stream repairs from a running srschedd at this base URL instead of solving locally: the -fail-link/-fail-node fault is replayed as fault then fault-repaired events over /v1/watch")
	watchEvents := flag.Int("watch-events", 0, "with -watch: replay a -seed random link-fault scenario of this many faults instead of the -fail-link/-fail-node pair")
	admitURL := flag.String("admit", "", "run the multi-tenant admission check for this problem on a running srschedd at this base URL (POST /v1/admit) instead of solving locally; a rejection exits with status 4")
	tenantID := flag.String("tenant", "", "tenant id for -admit or -watch requests (empty = the default tenant)")
	priority := flag.Int("priority", 0, "tenant priority for -admit: higher may evict strictly lower on a full fabric")
	rate := flag.Float64("rate", 0, "tenant rate guarantee for -admit: minimum acceptable τin/τout fraction in (0,1]; 0 accepts any degraded rate")
	explore := flag.Bool("explore", false, "explore the Pareto front over τin × latency × resources instead of solving one period: minimal feasible τin per placement by bisection, then latency- and footprint-minimal schedules, dominated points dropped")
	objectives := flag.String("objectives", "", "with -explore: comma-separated minimized objectives among tau_in, latency, links, buffers (empty = all four)")
	annealSeeds := flag.String("anneal-seeds", "", "with -explore: comma-separated annealer seeds, one candidate placement each (empty = seed+1, seed+2)")
	gridPoints := flag.Int("grid-points", 0, "with -explore: candidate periods per placement above its bisected minimum (0 = 5)")
	flag.Parse()

	cliutil.RequireExclusiveModes("srsched",
		cliutil.Mode{Flag: "best", Set: *best > 0},
		cliutil.Mode{Flag: "admit", Set: *admitURL != ""},
		cliutil.Mode{Flag: "watch", Set: *watch != ""},
		cliutil.Mode{Flag: "explore", Set: *explore},
	)

	tenant := wireTenant(*tenantID, *priority, *rate)
	if *admitURL != "" {
		runAdmit(*admitURL, pf, tenant)
		return
	}
	if *watch != "" {
		runWatch(*watch, pf, *watchEvents, tenant)
		return
	}

	ctx := context.Background()
	b, fs, err := pf.ParseProblem()
	if err != nil {
		cliutil.Fatal("srsched", err)
	}
	g, tm, top := b.Graph, b.Timing, b.Topology
	period := b.TauIn

	prob := b.ScheduleProblem()
	opts := schedule.Options{
		Seed: pf.Seed, LSDOnly: *lsdOnly, SyncMargin: *margin, Retries: *retries,
		AllowSharedNodes: *shared, Procs: *procs, CollectStats: *stats,
	}
	// The root spans the whole invocation (solve, repair, candidate
	// search); every pipeline stage records underneath it.
	var root *trace.Span
	if *showTrace || *traceOut != "" {
		root = trace.Start("srsched")
		opts.Trace = root
	}
	if *explore {
		runExplore(ctx, b, opts, *gridPoints, *annealSeeds, *objectives, root, *showTrace, *traceOut)
		return
	}
	var res *schedule.Result
	if (*saveSnap != "" || *loadSnap != "") && *best > 0 {
		fmt.Fprintln(os.Stderr, "srsched: -save-snapshot/-load-snapshot solve one placement; they cannot be combined with -best")
		os.Exit(2)
	}
	if *best > 0 {
		// Coupled placement search: rr, greedy, and -best random
		// placements are scheduled concurrently and the best outcome
		// kept (deterministic for a fixed seed, any -procs value).
		seeds := make([]int64, *best)
		for i := range seeds {
			seeds[i] = pf.Seed + int64(i)
		}
		cands, err := schedule.DefaultCandidates(ctx, prob, seeds...)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		sr, err := schedule.ComputeBestAllocation(ctx, prob, opts, cands)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		res = sr.Result
		fmt.Printf("candidate search: %d placements, best is #%d\n", len(cands), sr.Chosen)
	} else if *saveSnap != "" || *loadSnap != "" {
		// The snapshot identity is the wire StructureKey — the same key
		// srschedd's warm-start store and snapshot endpoint use — so a
		// file pre-baked here hydrates a service replica unchanged.
		key := pf.Spec().StructureKey()
		var solver *schedule.Solver
		if *loadSnap != "" {
			f, err := os.Open(*loadSnap)
			if err != nil {
				cliutil.Fatal("srsched", err)
			}
			solver, err = schedule.DecodeSolverSnapshot(f, prob, key)
			f.Close()
			if err != nil {
				cliutil.Fatal("srsched", err)
			}
		} else {
			solver = schedule.NewSolver(prob)
		}
		res, err = solver.Solve(ctx, period, opts)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		if *saveSnap != "" {
			f, err := os.Create(*saveSnap)
			if err != nil {
				cliutil.Fatal("srsched", err)
			}
			if err := schedule.EncodeSolverSnapshot(f, solver, key); err != nil {
				cliutil.Fatal("srsched", err)
			}
			if err := f.Close(); err != nil {
				cliutil.Fatal("srsched", err)
			}
			fmt.Printf("solver snapshot written to %s\n", *saveSnap)
		}
	} else {
		res, err = schedule.Compute(prob, opts)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
	}

	fmt.Printf("TFG %s: %d tasks, %d messages; topology %s (%d links)\n",
		g.Name(), g.NumTasks(), g.NumMessages(), top, top.Links())
	fmt.Printf("τc = %g µs, τm = %g µs, τin = %g µs (load %.4f)\n",
		tm.TauC(), tm.TauM(), period, tm.TauC()/period)
	fmt.Printf("peak utilization: LSD-to-MSD %.4f, after AssignPaths %.4f\n",
		res.PeakLSD, res.Peak)
	if *stats {
		st := res.Stats
		fmt.Printf("stats: %d attempt(s), %d AssignPaths evaluations\n", st.Attempts, st.AssignIterations)
		fmt.Printf("stats: windows %v, assign %v, allocate %v, schedule %v, omega %v\n",
			st.WindowsTime, st.AssignTime, st.AllocateTime, st.ScheduleTime, st.OmegaTime)
	}
	if !res.Feasible {
		fmt.Printf("INFEASIBLE at stage: %s\n", res.FailStage)
		emitTrace(root, *showTrace, *traceOut)
		os.Exit(1)
	}
	fmt.Printf("FEASIBLE: %d intervals, %d slices, %d switching commands, latency %g µs (%.4f× critical path)\n",
		res.Intervals.K(), len(res.Slices), res.Omega.NumCommands(), res.Latency, normLatency(res, g, tm))
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		if err := schedule.EncodeOmega(f, res.Omega); err != nil {
			cliutil.Fatal("srsched", err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fatal("srsched", err)
		}
		fmt.Printf("Ω written to %s\n", *save)
	}
	var repaired *schedule.Omega
	if fs != nil {
		rep, err := schedule.Repair(ctx, prob, opts, res, fs)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		if rerr := rep.Err(); rerr != nil {
			cliutil.Fatal("srsched", rerr)
		}
		fmt.Printf("repair for %s: %s (%d affected, %d rerouted), peak %.4f",
			fs, rep.Outcome, len(rep.Affected), rep.Rerouted, rep.NewPeak)
		switch rep.Outcome {
		case schedule.RepairDegradedWindow:
			fmt.Printf(", window ×%.2f", rep.WindowScale)
		case schedule.RepairDegradedRate:
			fmt.Printf(", τout %g µs (%.2f× τin)", rep.TauOut, rep.TauOut/period)
		}
		fmt.Println()
		if rep.Result != nil {
			repaired = rep.Result.Omega
		}
	}
	if *packets > 0 {
		cfg := cpsim.Config{
			Omega: res.Omega, Graph: g, Topology: top,
			PacketBytes: *packets, Bandwidth: pf.BW,
		}
		if repaired != nil {
			// Replay 2 healthy frames, fail the element, then hand over
			// to the repaired Ω for the back half of the run.
			cfg.Invocations = 8
			cfg.Fault = &cpsim.FaultInjection{Faults: fs, FailAt: 2, Repaired: repaired, RepairAt: 4}
		}
		out, err := cpsim.Run(cfg)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		fmt.Printf("packet-level CP simulation: %d packets delivered, %d violations, skew tolerance ±%.3g µs\n",
			out.PacketsDelivered, len(out.Violations), out.MaxSkewTolerated)
		if repaired != nil {
			fmt.Printf("fault injected mid-run: %d packets lost, OI window [%g, %g] µs, %d violations under the repaired Ω\n",
				out.LostPackets, out.OIStart, out.OIEnd, len(out.RepairViolations))
			if len(out.RepairViolations) > 0 {
				os.Exit(1)
			}
		}
		if len(out.Violations) > 0 && repaired == nil {
			os.Exit(1)
		}
	}
	if *chart {
		if err := gantt.Render(os.Stdout, res.Omega, top, 80); err != nil {
			cliutil.Fatal("srsched", err)
		}
		fmt.Println("legend:")
		if err := gantt.Legend(os.Stdout, g); err != nil {
			cliutil.Fatal("srsched", err)
		}
	}
	if *dump {
		dumpOmega(res.Omega, top)
	}
	emitTrace(root, *showTrace, *traceOut)
}

// runWatch drives a srschedd /v1/watch subscription instead of solving
// locally: it registers the flags' problem, replays the requested
// fault scenario as events, and prints each repaired frame as it
// streams back. The WatchClient reconnects dropped transports with
// backoff and Last-Event-ID resume, so a daemon restart mid-scenario
// only delays the stream. An infeasible repair exits with status 3,
// like the local -fail-link path.
// runExplore runs the local Pareto-front exploration: every candidate
// placement (the -alloc placement plus one annealed placement per
// -anneal-seeds entry) is bisected to its minimal feasible τin, a small
// period ladder above each minimum is solved for latency- and
// footprint-minimal schedules, and the non-dominated front is printed.
// No feasible schedule anywhere in range exits with status 1, like an
// infeasible single solve.
func runExplore(ctx context.Context, b *schedroute.Built, opts schedule.Options, gridPoints int, annealSeeds, objectives string, root *trace.Span, showTrace bool, traceOut string) {
	spec := schedule.ExploreSpec{GridPoints: gridPoints, Trace: root}
	if annealSeeds != "" {
		for _, tok := range strings.Split(annealSeeds, ",") {
			seed, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				cliutil.Fatal("srsched", errkind.Mark(fmt.Errorf("bad -anneal-seeds entry %q: %v", tok, err), errkind.ErrBadInput))
			}
			spec.AnnealSeeds = append(spec.AnnealSeeds, seed)
		}
	} else {
		spec.AnnealSeeds = []int64{opts.Seed + 1, opts.Seed + 2}
	}
	if objectives != "" {
		obs, err := schedule.ParseObjectives(strings.Split(objectives, ","))
		if err != nil {
			cliutil.Fatal("srsched", errkind.Mark(err, errkind.ErrBadInput))
		}
		spec.Objectives = obs
	}
	opts.Trace = nil // Explore records its own span family under spec.Trace
	front, err := schedule.Explore(ctx, b.ScheduleProblem(), opts, spec)
	if err != nil {
		cliutil.Fatal("srsched", err)
	}
	series := &experiments.ParetoSeries{
		Config: fmt.Sprintf("%s on %s", b.Graph.Name(), b.Topology),
		Front:  front,
	}
	if err := experiments.WritePareto(os.Stdout, series); err != nil {
		cliutil.Fatal("srsched", err)
	}
	emitTrace(root, showTrace, traceOut)
	if len(front.Points) == 0 {
		os.Exit(1)
	}
}

// wireTenant builds the optional wire tenant from the three flags; all
// zero means no tenant field (a v1-shaped request).
func wireTenant(id string, priority int, rate float64) *schedroute.Tenant {
	if id == "" && priority == 0 && rate == 0 {
		return nil
	}
	return &schedroute.Tenant{ID: id, Priority: priority, RateGuarantee: rate}
}

// runAdmit asks a running srschedd to admit this problem as a tenant
// and prints the admission report. The exit status follows the errkind
// table: 0 admitted, 4 rejected (the service's 422), the error's own
// class otherwise.
func runAdmit(baseURL string, pf *cliutil.ProblemFlags, tenant *schedroute.Tenant) {
	body, err := json.Marshal(schedroute.AdmitRequest{Problem: pf.Spec(), Tenant: tenant})
	if err != nil {
		cliutil.Fatal("srsched", err)
	}
	resp, err := http.Post(baseURL+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		cliutil.Fatal("srsched", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		cliutil.Fatal("srsched", err)
	}

	var adm *schedroute.AdmitResult
	if resp.StatusCode == http.StatusOK {
		adm = &schedroute.AdmitResult{}
		if err := json.Unmarshal(raw, adm); err != nil {
			cliutil.Fatal("srsched", err)
		}
	} else {
		var er schedroute.ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			cliutil.Fatal("srsched", fmt.Errorf("admit: status %d: %s", resp.StatusCode, raw))
		}
		adm = er.Admit
		if adm == nil {
			// Not an admission verdict (bad flags, unreachable fabric...):
			// rebuild the error's class from the envelope and exit with it.
			err := fmt.Errorf("admit: %s", er.Error)
			if kind := errkind.ByName(er.Kind); kind != nil {
				err = errkind.Mark(err, kind)
			}
			cliutil.Fatal("srsched", err)
		}
	}

	fmt.Printf("tenant %q: %s", adm.TenantID, adm.Outcome)
	if adm.Admitted {
		fmt.Printf(", τout %g µs", adm.TauOut)
		if adm.WindowScale != 1 {
			fmt.Printf(", window ×%.2f", adm.WindowScale)
		}
		fmt.Printf(", peak %.4f", adm.Peak)
	}
	fmt.Println()
	if len(adm.Evicted) > 0 {
		fmt.Printf("evicted: %v\n", adm.Evicted)
	}
	if !adm.Admitted {
		fmt.Printf("reason: %s (bottleneck link %d, residual share %.3g)\n",
			adm.Reason, adm.BottleneckLink, adm.BottleneckShare)
		os.Exit(cliutil.ExitStatus(errkind.Mark(fmt.Errorf("admission rejected"), errkind.ErrAdmissionRejected)))
	}
}

func runWatch(baseURL string, pf *cliutil.ProblemFlags, nEvents int, tenant *schedroute.Tenant) {
	b, _, err := pf.ParseProblem()
	if err != nil {
		cliutil.Fatal("srsched", err)
	}
	top := b.Topology

	// The event script: a seeded random link-fault scenario replayed
	// delta by delta, or the single -fail-link/-fail-node fault struck
	// and then repaired.
	var evs []schedroute.WatchEvent
	if nEvents > 0 {
		tr := faults.RandomTrace(top, pf.Seed, faults.RandomOptions{Events: nEvents, RepairFraction: 0.5})
		deltas, err := tr.Deltas(2 * 8)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		fs := topology.NewFaultSet(top.Links(), top.Nodes())
		for _, d := range deltas {
			evs = append(evs, deltaEvents(top, fs, d)...)
		}
	} else {
		spec := pf.FaultSpec()
		if len(spec.Links) == 0 && len(spec.Nodes) == 0 {
			cliutil.Fatal("srsched", fmt.Errorf("-watch needs -fail-link, -fail-node, or -watch-events"))
		}
		evs = append(evs,
			schedroute.WatchEvent{Type: schedroute.WatchEventFault, Links: spec.Links, Nodes: spec.Nodes},
			schedroute.WatchEvent{Type: schedroute.WatchEventRepaired, Links: spec.Links, Nodes: spec.Nodes},
		)
	}

	ctx := context.Background()
	wc := &schedroute.WatchClient{BaseURL: baseURL}
	st, err := wc.Subscribe(ctx, schedroute.WatchRequest{Problem: pf.Spec(), Tenant: tenant, Execute: true})
	if err != nil {
		cliutil.Fatal("srsched", err)
	}
	hello := <-st.Frames
	fmt.Printf("watch %s: subscribed, τin %g µs", st.ID, hello.TauIn)
	if hello.Schedule != nil {
		fmt.Printf(", base peak %.4f", hello.Schedule.Peak)
	}
	fmt.Println()

	status := 0
	for _, ev := range evs {
		ack, err := wc.Send(ctx, st.ID, ev)
		if err != nil {
			cliutil.Fatal("srsched", err)
		}
		for f := range st.Frames {
			if f.Type == schedroute.WatchFrameHeartbeat || f.Type == schedroute.WatchFrameGap {
				continue
			}
			printFrame(f)
			if f.Terminal {
				os.Exit(1)
			}
			if f.EventSeq == ack.EventSeq {
				if f.Type == schedroute.WatchFrameError {
					status = 3
				}
				break
			}
		}
	}
	if err := wc.Close(ctx, st.ID); err != nil {
		cliutil.Fatal("srsched", err)
	}
	for f := range st.Frames {
		if f.Type == schedroute.WatchFrameClosing {
			printFrame(f)
		}
	}
	if err := st.Err(); err != nil {
		cliutil.Fatal("srsched", err)
	}
	os.Exit(status)
}

// deltaEvents converts one faults.Delta into watch events, tracking
// the cumulative state in fs so only genuine state changes are sent
// (the watch rejects failing an already-failed element).
func deltaEvents(top *topology.Topology, fs *topology.FaultSet, d faults.Delta) []schedroute.WatchEvent {
	spec := func(l topology.LinkID) string {
		lk := top.Link(l)
		return fmt.Sprintf("%d-%d", lk.A, lk.B)
	}
	var evs []schedroute.WatchEvent
	fail := schedroute.WatchEvent{Type: schedroute.WatchEventFault}
	for _, e := range d.Fail {
		if e.IsNode && !fs.NodeFailed(e.Node) {
			fs.FailNode(e.Node)
			fail.Nodes = append(fail.Nodes, int(e.Node))
		} else if !e.IsNode && !fs.LinkFailed(e.Link) {
			fs.FailLink(e.Link)
			fail.Links = append(fail.Links, spec(e.Link))
		}
	}
	if len(fail.Links)+len(fail.Nodes) > 0 {
		evs = append(evs, fail)
	}
	rep := schedroute.WatchEvent{Type: schedroute.WatchEventRepaired}
	for _, e := range d.Repair {
		if e.IsNode && fs.NodeFailed(e.Node) {
			fs.RepairNode(e.Node)
			rep.Nodes = append(rep.Nodes, int(e.Node))
		} else if !e.IsNode && fs.LinkFailed(e.Link) {
			fs.RepairLink(e.Link)
			rep.Links = append(rep.Links, spec(e.Link))
		}
	}
	if len(rep.Links)+len(rep.Nodes) > 0 {
		evs = append(evs, rep)
	}
	return evs
}

// printFrame renders one stream frame the way the local repair path
// reports its ladder outcome.
func printFrame(f schedroute.WatchFrame) {
	switch f.Type {
	case schedroute.WatchFrameSchedule:
		if r := f.Repair; r != nil {
			fmt.Printf("frame %d [%s]: %s (%d affected, %d rerouted), peak %.4f, τout %g µs\n",
				f.Seq, f.State, r.Outcome, r.Affected, r.Rerouted, r.NewPeak, r.TauOut)
		} else if f.Schedule != nil {
			fmt.Printf("frame %d [%s]: rebased, peak %.4f, τin %g µs\n",
				f.Seq, f.State, f.Schedule.Peak, f.TauIn)
		}
		if f.OI != nil {
			oi := "consistent"
			if f.OI.OI {
				oi = "INCONSISTENT"
			}
			fmt.Printf("  executor: %d invocations, throughput %.4f, output %s\n",
				f.OI.Invocations, f.OI.ThroughputMid, oi)
		}
	case schedroute.WatchFrameError:
		fmt.Printf("frame %d [%s]: ERROR: %s\n", f.Seq, f.State, f.Reason)
		if r := f.Repair; r != nil && r.Stage != "" {
			fmt.Printf("  ladder exhausted at stage %s\n", r.Stage)
		}
	case schedroute.WatchFrameClosing:
		fmt.Printf("frame %d: closing (%s)\n", f.Seq, f.Reason)
	}
}

// emitTrace renders and/or exports the recorded span tree. The root is
// ended here, so unfinished subtrees (from an early exit) still show
// with their time-so-far.
func emitTrace(root *trace.Span, render bool, out string) {
	if root == nil {
		return
	}
	root.End()
	tree := root.Tree()
	if render {
		fmt.Println("trace:")
		if err := tree.Render(os.Stdout); err != nil {
			cliutil.Fatal("srsched", err)
		}
	}
	if out == "" {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		cliutil.Fatal("srsched", err)
	}
	if err := trace.WriteChromeTrace(f, tree); err != nil {
		cliutil.Fatal("srsched", err)
	}
	if err := f.Close(); err != nil {
		cliutil.Fatal("srsched", err)
	}
	fmt.Printf("trace written to %s\n", out)
}

func normLatency(res *schedule.Result, g *tfg.Graph, tm *tfg.Timing) float64 {
	cp, _ := g.CriticalPath(tm)
	return res.Latency / cp
}

func dumpOmega(om *schedule.Omega, top *topology.Topology) {
	for n := 0; n < top.Nodes(); n++ {
		cmds := om.CommandsAt(topology.NodeID(n))
		if len(cmds) == 0 {
			continue
		}
		fmt.Printf("node %d:\n", n)
		for _, c := range cmds {
			fmt.Printf("  [%8.3f, %8.3f) msg %-3d %s -> %s\n", c.Start, c.End, c.Msg, c.In, c.Out)
		}
	}
}
