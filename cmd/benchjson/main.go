// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so the performance trajectory of the
// scheduling pipeline can be tracked across PRs (see `make bench-json`,
// which writes BENCH_schedule.json). Every reported measurement is
// kept, including the custom shape metrics the figure benchmarks emit
// (bestU, loadpts(U<=1), SR-ok-pts, ...), not just ns/op.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson > BENCH_schedule.json
//	benchjson -compare BENCH_schedule.json NEW.json          # exit 1 on >10% regression
//	benchjson -compare BENCH_schedule.json -threshold 0.05 NEW.json
//
// In compare mode both inputs are benchjson documents; every benchmark
// present in both is checked on ns/op, allocs/op and B/op, and the tool
// fails if any metric regresses past the threshold — an allocation
// regression is a perf bug here even when wall time hides it, since the
// arena work keeps warm solves near-zero-alloc. Benchmarks (or metrics)
// present on only one side are reported but never fail the run (the
// suite is allowed to grow).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line: ns/op, B/op, allocs/op, and any b.ReportMetric outputs.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	baseline := flag.String("compare", "", "compare a baseline benchjson document against the current one (positional arg or stdin) instead of converting")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional ns/op regression in -compare mode")
	flag.Parse()

	if *baseline != "" {
		os.Exit(compare(*baseline, flag.Arg(0), *threshold))
	}

	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkName-8  100  123 ns/op  4 B/op ..." into a
// Benchmark; lines that don't follow the result shape (e.g. a bare
// "BenchmarkX" printed before a slow run finishes) are skipped.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// gatedUnits are the metrics the perf gate checks; every other metric
// (the shape metrics like bestU) is informational only.
var gatedUnits = []string{"ns/op", "B/op", "allocs/op"}

// compare checks the current gated metrics against a baseline document
// and returns the process exit status: 0 when no shared benchmark
// regressed past the threshold on any gated metric, 1 otherwise.
func compare(basePath, curPath string, threshold float64) int {
	base, err := loadReport(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	cur, err := loadReport(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	baseM := metricTable(base)
	curM := metricTable(cur)

	names := make([]string, 0, len(curM))
	for name := range curM {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressed []string
	for _, name := range names {
		nowAll := curM[name]
		wasAll, known := baseM[name]
		if !known {
			fmt.Printf("NEW      %-50s %12.0f ns/op\n", name, nowAll["ns/op"])
			continue
		}
		for _, unit := range gatedUnits {
			now, haveNow := nowAll[unit]
			was, haveWas := wasAll[unit]
			if !haveNow || !haveWas {
				continue // metric new or gone: informational, never a failure
			}
			var delta float64
			if was > 0 {
				delta = (now - was) / was
			} else if now > 0 {
				delta = 1 // from zero to nonzero is always a regression
			}
			status := "ok"
			if delta > threshold {
				status = "REGRESSED"
				regressed = append(regressed, unit)
			}
			fmt.Printf("%-8s %-50s %12.0f -> %12.0f %s (%+.1f%%)\n", status, name, was, now, unit, 100*delta)
		}
	}
	for name := range baseM {
		if _, ok := curM[name]; !ok {
			fmt.Printf("GONE     %-50s\n", name)
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s regression beyond %.0f%% threshold\n", strings.Join(regressed, ", "), 100*threshold)
		return 1
	}
	return 0
}

// loadReport reads a benchjson document from a file, or stdin when the
// path is empty (so CI can pipe the fresh run straight in).
func loadReport(path string) (*Report, error) {
	var raw []byte
	var err error
	if path == "" {
		raw, err = readAllStdin()
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", orStdin(path), err)
	}
	return &rep, nil
}

func orStdin(path string) string {
	if path == "" {
		return "stdin"
	}
	return path
}

func readAllStdin() ([]byte, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), sc.Err()
}

// metricTable indexes a report's gated metrics by benchmark name (with
// the -procs suffix folded back in when it isn't the default). Repeated
// runs of the same benchmark (`go test -count N`) collapse to the
// smallest value per metric: min-of-N is what makes a short-benchtime
// comparison stable enough to gate on, since scheduling noise only ever
// slows a run down (and allocs/op is deterministic, so min is exact).
func metricTable(rep *Report) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, b := range rep.Benchmarks {
		name := b.Name
		if b.Procs != 1 {
			name = fmt.Sprintf("%s-%d", b.Name, b.Procs)
		}
		for _, unit := range gatedUnits {
			v, ok := b.Metrics[unit]
			if !ok {
				continue
			}
			m := out[name]
			if m == nil {
				m = map[string]float64{}
				out[name] = m
			}
			if old, seen := m[unit]; !seen || v < old {
				m[unit] = v
			}
		}
	}
	return out
}
