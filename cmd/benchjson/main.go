// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so the performance trajectory of the
// scheduling pipeline can be tracked across PRs (see `make bench-json`,
// which writes BENCH_schedule.json). Every reported measurement is
// kept, including the custom shape metrics the figure benchmarks emit
// (bestU, loadpts(U<=1), SR-ok-pts, ...), not just ns/op.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson > BENCH_schedule.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line: ns/op, B/op, allocs/op, and any b.ReportMetric outputs.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkName-8  100  123 ns/op  4 B/op ..." into a
// Benchmark; lines that don't follow the result shape (e.g. a bare
// "BenchmarkX" printed before a slow run finishes) are skipped.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
