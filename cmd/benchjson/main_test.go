package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns, bytes, allocs float64) Benchmark {
	return Benchmark{Name: name, Procs: 1, Iterations: 1, Metrics: map[string]float64{
		"ns/op": ns, "B/op": bytes, "allocs/op": allocs,
	}}
}

// The gate must fail on an allocs/op or B/op regression even when
// ns/op improved — wall time can hide an allocation regression on a
// fast machine, but the arena contract is near-zero-alloc warm solves.
func TestCompareGatesAllocRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkX", 1000, 100, 10),
	}})

	cases := []struct {
		name string
		cur  Benchmark
		want int
	}{
		{"all-better", bench("BenchmarkX", 900, 90, 9), 0},
		{"within-threshold", bench("BenchmarkX", 1050, 105, 10), 0},
		{"ns-regressed", bench("BenchmarkX", 1200, 100, 10), 1},
		{"bytes-regressed", bench("BenchmarkX", 900, 150, 10), 1},
		{"allocs-regressed", bench("BenchmarkX", 900, 100, 14), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := writeReport(t, dir, tc.name+".json", Report{Benchmarks: []Benchmark{tc.cur}})
			if got := compare(base, cur, 0.10); got != tc.want {
				t.Fatalf("compare = %d, want %d", got, tc.want)
			}
		})
	}
}

// New benchmarks, vanished benchmarks, and metrics missing on one side
// (e.g. a baseline recorded before -benchmem) never fail the gate.
func TestCompareTolerantOfSuiteGrowth(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkOld", 1000, 100, 10),
		{Name: "BenchmarkNoMem", Procs: 1, Iterations: 1, Metrics: map[string]float64{"ns/op": 500}},
	}})
	cur := writeReport(t, dir, "cur.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkNew", 5000, 999, 99),
		bench("BenchmarkNoMem", 510, 7777, 88), // B/op & allocs/op are new: informational
	}})
	if got := compare(base, cur, 0.10); got != 0 {
		t.Fatalf("compare = %d, want 0", got)
	}
}

// Repeated -count runs collapse to the per-metric minimum before the
// comparison, so one noisy run cannot fail the gate.
func TestCompareMinOfN(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkX", 1000, 100, 10),
	}})
	cur := writeReport(t, dir, "cur.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkX", 2500, 100, 10), // noisy outlier
		bench("BenchmarkX", 990, 100, 10),
	}})
	if got := compare(base, cur, 0.10); got != 0 {
		t.Fatalf("compare = %d, want 0", got)
	}
}

func TestParseLineKeepsBenchmemMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkScheduleComputeSixCube-8   	    2907	    398273 ns/op	   57344 B/op	     349 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkScheduleComputeSixCube" || b.Procs != 8 {
		t.Fatalf("parsed %q procs %d", b.Name, b.Procs)
	}
	for unit, want := range map[string]float64{"ns/op": 398273, "B/op": 57344, "allocs/op": 349} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %g, want %g", unit, got, want)
		}
	}
}
