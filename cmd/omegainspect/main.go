// Command omegainspect loads a communication schedule Ω saved by
// srsched -save, prints its summary, optionally renders its link
// occupancy, validates it against a topology, and re-verifies it at
// packet level — the consumer side of the "compile on the host, ship to
// the CPs" workflow.
//
// Usage:
//
//	srsched -tfg dvb:4 -topo cube:6 -tauin 141 -save omega.json
//	omegainspect -omega omega.json -tfg dvb:4 -topo cube:6 -bw 64 -gantt
package main

import (
	"flag"
	"fmt"
	"os"

	"schedroute/internal/cliutil"
	"schedroute/internal/cpsim"
	"schedroute/internal/gantt"
	"schedroute/internal/schedule"
)

func main() {
	omegaPath := flag.String("omega", "", "path to the Ω JSON file (required)")
	tfgSpec := flag.String("tfg", "dvb:4", "the TFG the schedule was computed for")
	topoSpec := flag.String("topo", "cube:6", "the topology the schedule was computed for")
	bw := flag.Float64("bw", 64, "link bandwidth in bytes/µs (for packet verification)")
	packets := flag.Int("packets", 64, "packet size in bytes for the CP replay (0 to skip)")
	chart := flag.Bool("gantt", false, "render the frame's link occupancy")
	flag.Parse()

	if *omegaPath == "" {
		fmt.Fprintln(os.Stderr, "omegainspect: -omega is required")
		os.Exit(2)
	}
	f, err := os.Open(*omegaPath)
	if err != nil {
		fatal(err)
	}
	om, err := schedule.DecodeOmega(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	g, err := cliutil.LoadGraph(*tfgSpec)
	if err != nil {
		fatal(err)
	}
	top, err := cliutil.ParseTopology(*topoSpec)
	if err != nil {
		fatal(err)
	}
	if len(om.Windows) != g.NumMessages() {
		fatal(fmt.Errorf("schedule has %d windows but the TFG has %d messages — wrong -tfg?", len(om.Windows), g.NumMessages()))
	}

	fmt.Printf("Ω: τin = %g µs, latency = %g µs, %d slices, %d switching commands on %d nodes\n",
		om.TauIn, om.Latency, len(om.Slices), om.NumCommands(), len(om.Nodes))
	if err := om.Validate(top); err != nil {
		fatal(fmt.Errorf("validation FAILED: %w", err))
	}
	fmt.Println("static validation: contention-free, windows honored, transmissions complete")

	if *packets > 0 {
		out, err := cpsim.Run(cpsim.Config{
			Omega: om, Graph: g, Topology: top,
			PacketBytes: *packets, Bandwidth: *bw,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("packet replay: %d packets/frame delivered, %d violations, skew tolerance ±%.3g µs\n",
			out.PacketsDelivered, len(out.Violations), out.MaxSkewTolerated)
		if len(out.Violations) > 0 {
			os.Exit(1)
		}
	}
	if *chart {
		if err := gantt.Render(os.Stdout, om, top, 80); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "omegainspect:", err)
	os.Exit(1)
}
