// Command experiments regenerates the paper's evaluation figures.
//
// Usage:
//
//	experiments -fig 7        # one figure (5..10)
//	experiments -all          # all six figures
//	experiments -list         # show the figure → configuration map
//
// Figures 5 and 6 print peak-utilization tables (AssignPaths vs
// LSD-to-MSD); figures 7-10 print wormhole-vs-scheduled-routing
// throughput/latency tables with output-inconsistency spikes.
package main

import (
	"flag"
	"fmt"
	"os"

	"schedroute/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (5..10)")
	all := flag.Bool("all", false, "regenerate every figure")
	list := flag.Bool("list", false, "list figures and their configurations")
	invocations := flag.Int("invocations", 40, "wormhole invocations to simulate per load point")
	warmup := flag.Int("warmup", 20, "wormhole invocations to discard before measuring")
	seed := flag.Int64("seed", 1, "AssignPaths random-restart seed")
	format := flag.String("format", "table", "output format: table or csv")
	procs := flag.Int("procs", 0, "worker goroutines per sweep (0 = GOMAXPROCS, 1 = serial); results are identical either way")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fmt.Fprintln(os.Stderr, "experiments: -format must be table or csv")
		os.Exit(2)
	}

	if *list {
		for id := 5; id <= 10; id++ {
			keys, _ := experiments.Figure(id)
			kind := "throughput/latency"
			if experiments.IsUtilizationFigure(id) {
				kind = "peak utilization"
			}
			fmt.Printf("fig %-2d (%s): %v\n", id, kind, keys)
		}
		return
	}

	var figs []int
	switch {
	case *all:
		figs = []int{5, 6, 7, 8, 9, 10}
	case *fig >= 5 && *fig <= 10:
		figs = []int{*fig}
	default:
		fmt.Fprintln(os.Stderr, "experiments: pass -fig 5..10, -all or -list")
		os.Exit(2)
	}

	cfgs, err := experiments.StandardConfigs()
	if err != nil {
		fatal(err)
	}
	for _, id := range figs {
		keys, _ := experiments.Figure(id)
		if *format == "table" {
			fmt.Printf("==== Figure %d ====\n", id)
		}
		for _, key := range keys {
			cfg := cfgs[key]
			cfg.Seed = *seed
			cfg.Invocations = *invocations
			cfg.Warmup = *warmup
			cfg.Procs = *procs
			if experiments.IsUtilizationFigure(id) {
				s, err := experiments.UtilizationSweep(cfg)
				if err != nil {
					fatal(err)
				}
				write := experiments.WriteUtilization
				if *format == "csv" {
					write = experiments.WriteUtilizationCSV
				}
				if err := write(os.Stdout, s); err != nil {
					fatal(err)
				}
			} else {
				s, err := experiments.PerfSweep(cfg)
				if err != nil {
					fatal(err)
				}
				write := experiments.WritePerf
				if *format == "csv" {
					write = experiments.WritePerfCSV
				}
				if err := write(os.Stdout, s); err != nil {
					fatal(err)
				}
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
