// Command experiments regenerates the paper's evaluation figures.
//
// Usage:
//
//	experiments -fig 7            # one figure (5..10)
//	experiments -all              # all six figures
//	experiments -fig faults       # survivability under single-link faults
//	experiments -fig tenant       # two-tenant isolation under victim-only faults
//	experiments -fig pareto       # Pareto fronts: τin × latency × resources
//	experiments -list             # show the figure → configuration map
//
// Figures 5 and 6 print peak-utilization tables (AssignPaths vs
// LSD-to-MSD); figures 7-10 print wormhole-vs-scheduled-routing
// throughput/latency tables with output-inconsistency spikes. The
// faults pseudo-figure runs the repair ladder against every
// single-link fault at each load point, optionally re-verifying each
// repaired Ω by packet-level simulation with the fault injected
// mid-run (-verify), and can be narrowed with -config. The pareto
// pseudo-figure explores the period × latency × resource trade-off
// per configuration, co-optimizing placement through the annealer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"schedroute/internal/cliutil"
	"schedroute/internal/experiments"
	"schedroute/internal/schedule"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (5..10), 'faults' for the survivability sweep, 'tenant' for the two-tenant isolation sweep, or 'pareto' for the multi-criteria fronts")
	all := flag.Bool("all", false, "regenerate every figure")
	configFilter := flag.String("config", "", "faults sweep: only configurations whose key contains this substring")
	verify := flag.Bool("verify", true, "faults sweep: re-verify every repaired Ω by packet-level fault injection")
	strict := flag.Bool("strict", false, "faults sweep: abort on the first infeasible repair")
	maxFaults := flag.Int("max-faults", 0, "faults sweep: cap single-link scenarios per load point (0 = every link)")
	gridPoints := flag.Int("grid-points", 0, "pareto sweep: candidate periods per placement (0 = 4)")
	annealSeeds := flag.String("anneal-seeds", "", "pareto sweep: comma-separated annealer seeds for candidate placements (default seed+1,seed+2)")
	objectives := flag.String("objectives", "", "pareto sweep: comma-separated objectives among tau_in,latency,links,buffers (default all)")
	list := flag.Bool("list", false, "list figures and their configurations")
	invocations := flag.Int("invocations", 40, "wormhole invocations to simulate per load point")
	warmup := flag.Int("warmup", 20, "wormhole invocations to discard before measuring")
	seed := flag.Int64("seed", 1, "AssignPaths random-restart seed")
	format := flag.String("format", "table", "output format: table or csv")
	procs := flag.Int("procs", 0, "worker goroutines per sweep (0 = GOMAXPROCS, 1 = serial); results are identical either way")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fmt.Fprintln(os.Stderr, "experiments: -format must be table or csv")
		os.Exit(2)
	}

	if *list {
		for id := 5; id <= 10; id++ {
			keys, _ := experiments.Figure(id)
			kind := "throughput/latency"
			if experiments.IsUtilizationFigure(id) {
				kind = "peak utilization"
			}
			fmt.Printf("fig %-2d (%s): %v\n", id, kind, keys)
		}
		return
	}

	cfgs, err := experiments.StandardConfigs()
	if err != nil {
		fatal(err)
	}

	if *fig == "faults" {
		runFaults(cfgs, *configFilter, *seed, *procs, *maxFaults, *verify, *strict, *format)
		return
	}
	if *fig == "tenant" {
		runTenantFaults(cfgs, *configFilter, *seed, *procs, *maxFaults, *strict, *format)
		return
	}
	if *fig == "pareto" {
		runPareto(cfgs, *configFilter, *seed, *procs, *gridPoints, *annealSeeds, *objectives, *format)
		return
	}

	var figs []int
	figNum, figErr := strconv.Atoi(*fig)
	switch {
	case *all:
		figs = []int{5, 6, 7, 8, 9, 10}
	case figErr == nil && figNum >= 5 && figNum <= 10:
		figs = []int{figNum}
	default:
		fmt.Fprintln(os.Stderr, "experiments: pass -fig 5..10, -fig faults, -fig tenant, -fig pareto, -all or -list")
		os.Exit(2)
	}
	for _, id := range figs {
		keys, _ := experiments.Figure(id)
		if *format == "table" {
			fmt.Printf("==== Figure %d ====\n", id)
		}
		for _, key := range keys {
			cfg := cfgs[key]
			cfg.Seed = *seed
			cfg.Invocations = *invocations
			cfg.Warmup = *warmup
			cfg.Procs = *procs
			if experiments.IsUtilizationFigure(id) {
				s, err := experiments.UtilizationSweep(context.Background(), cfg)
				if err != nil {
					fatal(err)
				}
				write := experiments.WriteUtilization
				if *format == "csv" {
					write = experiments.WriteUtilizationCSV
				}
				if err := write(os.Stdout, s); err != nil {
					fatal(err)
				}
			} else {
				s, err := experiments.PerfSweep(context.Background(), cfg)
				if err != nil {
					fatal(err)
				}
				write := experiments.WritePerf
				if *format == "csv" {
					write = experiments.WritePerfCSV
				}
				if err := write(os.Stdout, s); err != nil {
					fatal(err)
				}
			}
			fmt.Println()
		}
	}
}

// runFaults executes the survivability pseudo-figure over every
// standard configuration whose key contains filter, in key order.
func runFaults(cfgs map[string]experiments.Config, filter string, seed int64, procs, maxFaults int, verify, strict bool, format string) {
	var keys []string
	for key := range cfgs {
		if strings.Contains(key, filter) {
			keys = append(keys, key)
		}
	}
	if len(keys) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no configuration matches -config %q\n", filter)
		os.Exit(2)
	}
	sort.Strings(keys)
	if format == "table" {
		fmt.Println("==== Survivability under single-link faults ====")
	}
	for _, key := range keys {
		cfg := cfgs[key]
		cfg.Seed = seed
		cfg.Procs = procs
		cfg.MaxFaults = maxFaults
		cfg.VerifyFaults = verify
		cfg.StrictRepair = strict
		s, err := experiments.SurvivabilitySweep(context.Background(), cfg)
		if err != nil {
			cliutil.Fatal("experiments", err)
		}
		write := experiments.WriteSurvivability
		if format == "csv" {
			write = experiments.WriteSurvivabilityCSV
		}
		if err := write(os.Stdout, s); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// runTenantFaults executes the two-tenant isolation sweep: faults
// strike only links the victim tenant's paths use exclusively, and the
// table reports the victim's repair-ladder outcomes next to whether the
// bystander tenant's Ω stayed byte-identical.
func runTenantFaults(cfgs map[string]experiments.Config, filter string, seed int64, procs, maxFaults int, strict bool, format string) {
	var keys []string
	for key := range cfgs {
		if strings.Contains(key, filter) {
			keys = append(keys, key)
		}
	}
	if len(keys) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no configuration matches -config %q\n", filter)
		os.Exit(2)
	}
	sort.Strings(keys)
	if format == "table" {
		fmt.Println("==== Tenant isolation under victim-only link faults ====")
	}
	for _, key := range keys {
		cfg := cfgs[key]
		cfg.Seed = seed
		cfg.Procs = procs
		cfg.MaxFaults = maxFaults
		cfg.StrictRepair = strict
		s, err := experiments.TenantSurvivabilitySweep(context.Background(), cfg)
		if err != nil {
			cliutil.Fatal("experiments", err)
		}
		write := experiments.WriteTenantSurvivability
		if format == "csv" {
			write = experiments.WriteTenantSurvivabilityCSV
		}
		if err := write(os.Stdout, s); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// runPareto executes the multi-criteria pseudo-figure: one Pareto
// front per standard configuration whose key contains filter, in key
// order.
func runPareto(cfgs map[string]experiments.Config, filter string, seed int64, procs, gridPoints int, annealSeeds, objectives, format string) {
	var keys []string
	for key := range cfgs {
		if strings.Contains(key, filter) {
			keys = append(keys, key)
		}
	}
	if len(keys) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no configuration matches -config %q\n", filter)
		os.Exit(2)
	}
	sort.Strings(keys)
	spec := schedule.ExploreSpec{GridPoints: gridPoints}
	if annealSeeds != "" {
		for _, f := range strings.Split(annealSeeds, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad -anneal-seeds entry %q\n", f)
				os.Exit(2)
			}
			spec.AnnealSeeds = append(spec.AnnealSeeds, s)
		}
	}
	if objectives != "" {
		obs, err := schedule.ParseObjectives(strings.Split(objectives, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		spec.Objectives = obs
	}
	if format == "table" {
		fmt.Println("==== Pareto fronts: τin × latency × resources ====")
	}
	for _, key := range keys {
		cfg := cfgs[key]
		cfg.Seed = seed
		cfg.Procs = procs
		s, err := experiments.ParetoSweep(context.Background(), cfg, spec)
		if err != nil {
			cliutil.Fatal("experiments", err)
		}
		write := experiments.WritePareto
		if format == "csv" {
			write = experiments.WriteParetoCSV
		}
		if err := write(os.Stdout, s); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
