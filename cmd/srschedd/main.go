// Command srschedd serves the scheduled-routing pipeline over HTTP:
// schedule computation, fault repair with the degradation ladder, and
// τin sweeps, with a solver cache that amortizes problem structure
// across requests and coalescing of identical concurrent solves.
//
// Usage:
//
//	srschedd -listen :8080
//	srschedd -listen :8080 -pprof-addr localhost:6060
//	srschedd -listen :8080 -warmstart-dir /var/lib/srschedd/snapshots
//	srschedd -listen :8081 -warmstart-dir shared/ -peers http://a:8081,http://b:8082 -self http://a:8081
//	srschedd -version
//	curl -s localhost:8080/v1/schedule -d '{"problem":{"tfg":"dvb:4","topology":"cube:6","tau_in":141}}'
//	curl -s 'localhost:8080/v1/schedule?debug=trace' -d '...' | traceview -text
//
// SIGINT/SIGTERM begin a graceful drain: keep-alives stop renewing,
// watch subscriptions receive a terminal closing frame, in-flight
// solves finish, queued and new requests get 503, and the listener
// closes once the drain completes (or the -drain-timeout deadline
// expires).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"schedroute/internal/service"
	"schedroute/pkg/schedroute"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "requests allowed to wait for a worker before 503")
	solvers := flag.Int("solvers", 32, "problem structures kept in the solver-cache LRU")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request solve deadline")
	maxBody := flag.Int64("max-body", 8<<20, "request body size limit in bytes")
	var drain time.Duration
	flag.DurationVar(&drain, "drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
	flag.DurationVar(&drain, "drain", 30*time.Second, "alias for -drain-timeout")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); never exposed on the serving port")
	warmDir := flag.String("warmstart-dir", "", "directory for solver-structure snapshots (write-behind on first build, read before cold derivation; sharable between replicas)")
	warmMax := flag.Int("warmstart-max", 256, "snapshot files kept in -warmstart-dir before LRU eviction")
	peersFlag := flag.String("peers", "", "comma-separated fleet base URLs (including -self); enables shard routing by structure key")
	self := flag.String("self", "", "this replica's own base URL, required with -peers")
	shardPolicy := flag.String("shard-policy", "proxy", "misrouted-request policy: proxy (forward to the owning shard) or serve (handle locally, record a miss)")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	if *version {
		v := schedroute.Version()
		fmt.Printf("srschedd %s (schema %d, %s)\n", v.ModuleVersion, v.SchemaVersion, v.GoVersion)
		return
	}
	if *pprofAddr != "" && *pprofAddr == *listen {
		fmt.Fprintln(os.Stderr, "srschedd: -pprof-addr must differ from -listen; the profiler is never served on the API port")
		os.Exit(2)
	}
	if *shardPolicy != "proxy" && *shardPolicy != "serve" {
		fmt.Fprintf(os.Stderr, "srschedd: -shard-policy %q: want proxy or serve\n", *shardPolicy)
		os.Exit(2)
	}
	var peers []string
	if *peersFlag != "" {
		inFleet := false
		for _, p := range strings.Split(*peersFlag, ",") {
			p = strings.TrimSuffix(strings.TrimSpace(p), "/")
			if p == "" {
				continue
			}
			peers = append(peers, p)
			if p == *self {
				inFleet = true
			}
		}
		if *self == "" || !inFleet {
			fmt.Fprintln(os.Stderr, "srschedd: -peers requires -self, and -self must be one of the peers")
			os.Exit(2)
		}
	}
	if *warmDir != "" {
		// Fail on a bad directory at startup, not on the first solve.
		if err := os.MkdirAll(*warmDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "srschedd: -warmstart-dir:", err)
			os.Exit(2)
		}
	}

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := service.New(service.Config{
		MaxSolvers:     *solvers,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Logger:         log,
		WarmStartDir:   *warmDir,
		WarmStartMax:   *warmMax,
		Peers:          peers,
		SelfURL:        *self,
		ShardPolicy:    *shardPolicy,
	})
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("listening", "addr", *listen)

	// The profiler gets its own listener and its own mux: registering
	// pprof on the API mux (or on http.DefaultServeMux by side effect)
	// would expose heap dumps to every client that can reach the API.
	var ps *http.Server
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps = &http.Server{Addr: *pprofAddr, Handler: pm}
		go func() {
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof listener", "err", err.Error())
			}
		}()
		log.Info("pprof listening", "addr", *pprofAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("draining", "signal", sig.String(), "deadline", drain.String())
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "srschedd:", err)
		os.Exit(1)
	}

	// Stop renewing keep-alive connections immediately: idle clients
	// (and watch streams between frames) would otherwise hold their
	// connections open and stall the listener shutdown until the drain
	// deadline every time.
	hs.SetKeepAlivesEnabled(false)

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Drain the solve pool first so queued work is shed immediately —
	// including every open watch subscription, which receives a
	// terminal closing frame — then close the listener once the
	// in-flight requests are done.
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("drain incomplete", "err", err.Error())
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("listener shutdown", "err", err.Error())
		os.Exit(1)
	}
	if ps != nil {
		ps.Shutdown(ctx)
	}
	log.Info("stopped")
}
