// Command tfggen generates task-flow graphs as JSON for use with
// srsched and wormsim.
//
// Usage:
//
//	tfggen -kind dvb -n 4 > dvb4.json
//	tfggen -kind random -layers 2,4,4,2 -seed 7 > rand.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"schedroute/internal/dvb"
	"schedroute/internal/tfg"
)

func main() {
	kind := flag.String("kind", "dvb", "graph kind: dvb, chain, fan, diamond, fft, stencil, random (alias: layered)")
	n := flag.Int("n", 4, "size parameter (models, chain length, fan width)")
	ops := flag.Int64("ops", 1925, "operations per task (chain/fan/diamond)")
	bytes := flag.Int64("bytes", 1536, "bytes per message (chain/fan/diamond)")
	layers := flag.String("layers", "2,4,4,2", "random graph layer widths; 64*14 repeats a width 14 times")
	seed := flag.Int64("seed", 1, "random graph seed")
	density := flag.Float64("density", 0.3, "random graph extra-edge probability")
	flag.Parse()

	var g *tfg.Graph
	var err error
	switch *kind {
	case "dvb":
		g, err = dvb.New(*n)
	case "chain":
		g, err = tfg.Chain(*n, *ops, *bytes)
	case "fan":
		g, err = tfg.FanOutIn(*n, *ops, *bytes)
	case "diamond":
		g, err = tfg.Diamond(*ops, *bytes)
	case "fft":
		g, err = tfg.FFT(*n, *ops, *bytes)
	case "stencil":
		g, err = tfg.Stencil(*n, *ops, *bytes, *bytes/4)
	case "random", "layered":
		var widths []int
		for _, part := range strings.Split(*layers, ",") {
			part = strings.TrimSpace(part)
			w, rep := part, 1
			if ws, rs, ok := strings.Cut(part, "*"); ok {
				w = strings.TrimSpace(ws)
				r, perr := strconv.Atoi(strings.TrimSpace(rs))
				if perr != nil || r < 1 {
					fatal(fmt.Errorf("bad layer repeat %q", part))
				}
				rep = r
			}
			v, perr := strconv.Atoi(w)
			if perr != nil {
				fatal(perr)
			}
			for i := 0; i < rep; i++ {
				widths = append(widths, v)
			}
		}
		g, err = tfg.RandomLayered(*seed, widths, 400, 1925, 192, 3200, *density)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}
	if err := tfg.Encode(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tfggen:", err)
	os.Exit(1)
}
