// Command wormsim simulates wormhole routing of a periodically invoked
// task-flow graph and reports per-invocation throughput and latency,
// flagging output inconsistency.
//
// Usage:
//
//	wormsim -tfg dvb:4 -topo cube:6 -bw 64 -tauin 75 -invocations 40
package main

import (
	"flag"
	"fmt"
	"os"

	"schedroute/internal/cliutil"
	"schedroute/internal/metrics"
	"schedroute/internal/wormhole"
)

func main() {
	pf := cliutil.AddProblemFlags(flag.CommandLine)
	invocations := flag.Int("invocations", 40, "measured invocations")
	warmup := flag.Int("warmup", 20, "warmup invocations excluded from measurement")
	adaptive := flag.Bool("adaptive", false, "adaptive cut-through path selection instead of LSD-to-MSD")
	strictVC := flag.Bool("strict-vc", false, "stricter model: two multiplexed virtual channels per physical channel (half bandwidth)")
	verbose := flag.Bool("v", false, "print every output interval")
	flag.Parse()

	b, _, err := pf.ParseProblem()
	if err != nil {
		cliutil.Fatal("wormsim", err)
	}
	g, tm, top := b.Graph, b.Timing, b.Topology
	period := b.TauIn

	res, err := wormhole.Simulate(wormhole.Config{
		Graph: g, Timing: tm, Topology: top, Assignment: b.Assignment,
		TauIn: period, Invocations: *invocations, Warmup: *warmup,
		Adaptive: *adaptive, StrictVC: *strictVC,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("TFG %s on %s, B=%g bytes/µs, τin=%g µs (load %.4f)\n",
		g.Name(), top, pf.BW, period, tm.TauC()/period)
	if res.Deadlocked {
		fmt.Println("DEADLOCK: undelivered messages remain (path-holding cycle)")
		os.Exit(1)
	}
	cp, _ := g.CriticalPath(tm)
	ivs := metrics.Intervals(res.OutputCompletions)
	th, err := metrics.NormalizedThroughput(period, ivs)
	if err != nil {
		fatal(err)
	}
	lat, err := metrics.NormalizedLatency(cp, res.Latencies)
	if err != nil {
		fatal(err)
	}
	oi := metrics.OutputInconsistent(period, ivs, 1e-6)
	fmt.Printf("normalized throughput (min/mid/max): %s\n", th)
	fmt.Printf("normalized latency    (min/mid/max): %s\n", lat)
	fmt.Printf("output inconsistency: %v; total link wait %.1f µs\n", oi, res.TotalLinkWait)
	if *verbose {
		for i, iv := range ivs {
			fmt.Printf("  interval %2d: %.3f µs\n", i, iv)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wormsim:", err)
	os.Exit(1)
}
