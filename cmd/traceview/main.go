// Command traceview converts a recorded solve trace into the Chrome
// trace_event JSON format, loadable in chrome://tracing or Perfetto.
// It accepts any of the three shapes the toolchain produces: a raw
// span tree (srsched -trace-out already emits Chrome format, but the
// library's trace.Tree JSON is also accepted), the schema-versioned
// envelope from ?debug=trace, or a whole /v1/schedule / /v1/repair
// response with the trace field attached.
//
// Usage:
//
//	curl -s 'localhost:8080/v1/schedule?debug=trace' -d @req.json | traceview > trace.json
//	traceview -text response.json        # render as an indented tree instead
//	traceview -o trace.json response.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"schedroute/internal/trace"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	text := flag.Bool("text", false, "render the trace as an indented text tree instead of Chrome JSON")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "traceview: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	tree, err := extract(raw)
	if err != nil {
		fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if *text {
		err = tree.Render(w)
	} else {
		err = trace.WriteChromeTrace(w, tree)
	}
	if err != nil {
		fatal(err)
	}
}

// extract pulls the span tree out of whichever wrapper the input uses:
// a full API response ("trace" envelope inside), a bare envelope
// ("root" inside), or a raw tree ("name" at the top level).
func extract(raw []byte) (*trace.Tree, error) {
	var doc struct {
		Trace *struct {
			Root *trace.Tree `json:"root"`
		} `json:"trace"`
		Root *trace.Tree `json:"root"`
		Name string      `json:"name"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parse input: %w", err)
	}
	switch {
	case doc.Trace != nil && doc.Trace.Root != nil:
		return doc.Trace.Root, nil
	case doc.Root != nil:
		return doc.Root, nil
	case doc.Name != "":
		var t trace.Tree
		if err := json.Unmarshal(raw, &t); err != nil {
			return nil, fmt.Errorf("parse span tree: %w", err)
		}
		return &t, nil
	}
	return nil, fmt.Errorf("input has no trace: expected a span tree, a trace envelope, or an API response with ?debug=trace")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceview:", err)
	os.Exit(1)
}
